/**
 * @file
 * Configuration of the D-cache port subsystem — the knobs the paper's
 * evaluation sweeps.
 *
 * The techniques, in the paper's terms:
 *
 *  - **Multi-porting** (`ports`): the expensive baseline the paper wants
 *    to avoid; a dual-ported cache services two accesses per cycle.
 *  - **Store buffer** (`storeBufferEntries`, `storeCombining`,
 *    `drainPolicy`): committed stores park in a small buffer and retire
 *    to the cache during idle port cycles; stores to the same line
 *    combine so several stores cost one port access.
 *  - **Load-all / line buffers** (`lineBuffers`): every load that uses
 *    the port captures the whole port-width window it reads into a line
 *    buffer inside the processor; later loads that fall in captured
 *    bytes are serviced from the buffer without using a port.
 *  - **Wide port** (`portWidthBytes`): a wider port amplifies both of
 *    the above — one access captures more bytes for the line buffers
 *    ("load-all-wide") and one drain writes more combined store bytes.
 */

#ifndef CPE_CORE_PORT_CONFIG_HH
#define CPE_CORE_PORT_CONFIG_HH

#include <cstdint>
#include <string>

namespace cpe::core {

/** How line fills obtain array bandwidth. */
enum class FillPolicy : std::uint8_t {
    /** Fills occupy a data port for lineBytes/portWidth cycles. */
    StealPort,
    /** A dedicated fill port exists; fills are free to the data ports. */
    DedicatedFillPort,
};

/** When the store buffer writes to the cache. */
enum class DrainPolicy : std::uint8_t {
    /** Only into port cycles loads left idle (the paper's scheme). */
    IdleOnly,
    /**
     * Drain whenever non-empty, still after same-cycle loads (loses
     * combining opportunity but keeps the buffer near-empty).
     */
    Eager,
    /** Hold entries for combining until occupancy crosses a threshold. */
    Threshold,
};

/** What happens to line buffers when a store writes their line. */
enum class LineBufferWritePolicy : std::uint8_t {
    /** Invalidate the matching line buffer. */
    Invalidate,
    /** Patch the stored bytes into the buffer, keeping it hot. */
    Update,
};

/** Full configuration of the D-cache port subsystem. */
struct PortTechConfig
{
    /** Number of data ports (1 = the cheap cache, 2 = the baseline). */
    unsigned ports = 1;
    /** Port width in bytes: 8, 16, or 32 (= full line). */
    unsigned portWidthBytes = 8;

    /**
     * Multi-banking — the classic cheaper alternative to true
     * multi-porting.  With banks > 1 the array is split into
     * single-ported banks selected by address; `ports` then counts the
     * CPU-side access buses, and two same-cycle accesses succeed only
     * when they fall in different banks (otherwise: bank conflict,
     * retry).  banks == 1 models a true multi-ported array.
     */
    unsigned banks = 1;
    /** Bank-interleave granularity in bytes (word vs line interleave). */
    unsigned bankInterleaveBytes = 8;

    /** Store-buffer capacity; 0 disables it (stores need a port at
     *  commit). */
    unsigned storeBufferEntries = 0;
    /** Merge same-line stores into one entry. */
    bool storeCombining = true;
    DrainPolicy drainPolicy = DrainPolicy::IdleOnly;
    /** Occupancy that triggers draining under Threshold policy. */
    unsigned drainThreshold = 4;

    /** Number of line buffers; 0 disables load-all. */
    unsigned lineBuffers = 0;
    LineBufferWritePolicy lineBufferWrite = LineBufferWritePolicy::Update;
    /** Flush line buffers on user/kernel transitions (conservative,
     *  models an OS that cannot trust stale user data). */
    bool flushLineBuffersOnModeSwitch = true;

    FillPolicy fillPolicy = FillPolicy::StealPort;
    /**
     * Array cycles one line fill occupies under StealPort.  This is a
     * property of the array's internal (fill-path) width, not of the
     * CPU-visible port width: real caches fill a 32 B line through a
     * wide internal path in a couple of array accesses regardless of
     * how narrow the load port is.
     */
    unsigned fillOccupancyCycles = 2;

    /** One-line summary, used in bench table headers. */
    std::string describe() const;

    // --- Named configurations used throughout the evaluation ---------

    /** 1 port, 8 B, no buffering: the cheap cache, untreated. */
    static PortTechConfig singlePortBase();
    /** 2 ports, 8 B, no buffering: the expensive baseline. */
    static PortTechConfig dualPortBase();
    /** 1 port + every technique (8-entry combining store buffer,
     *  4 line buffers, 32 B wide port): the paper's headline config. */
    static PortTechConfig singlePortAllTechniques();
};

} // namespace cpe::core

#endif // CPE_CORE_PORT_CONFIG_HH
