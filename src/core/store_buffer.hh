/**
 * @file
 * The combining store buffer — technique #1 of the paper.
 *
 * Committed stores enter the buffer instead of demanding a cache port
 * at commit time.  Stores to the same cache line merge into one entry
 * (a line address plus a per-byte valid mask), so a burst of small
 * stores costs a single port access when the entry later drains during
 * an idle port cycle.  A wide port amplifies the win: one drain writes
 * up to portWidth bytes.
 */

#ifndef CPE_CORE_STORE_BUFFER_HH
#define CPE_CORE_STORE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <string>

#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace cpe::core {

/** How a byte range relates to a store-buffer entry's valid bytes. */
enum class Coverage : std::uint8_t { None, Partial, Full };

/**
 * FIFO of line-granular combining entries.  Line size is capped at 64
 * bytes so a std::uint64_t serves as the per-byte valid mask.
 */
class StoreBuffer
{
  public:
    /** One pending (committed but not yet written) line's worth. */
    struct Entry
    {
        Addr lineAddr = 0;
        std::uint64_t byteMask = 0; ///< bit i = byte i of the line valid
        Cycle allocCycle = 0;
        /** Entry may not drain before this cycle (awaiting a fill). */
        Cycle blockedUntil = 0;
        /** A load partially overlapped: drain at top priority. */
        bool forceDrain = false;
    };

    /** One port access worth of drain work. */
    struct DrainOp
    {
        Addr addr = 0;           ///< window base address
        unsigned bytes = 0;      ///< window width actually written
        Addr lineAddr = 0;
        /** Exact bytes written, as a line-relative mask. */
        std::uint64_t validMask = 0;
        bool entryFinished = false; ///< entry fully written and freed
    };

    /**
     * @param name Stat-group name.
     * @param entries Capacity (0 = buffer disabled; insert() panics).
     * @param line_bytes L1 line size; all masks are per-byte within it.
     * @param combining Merge same-line stores into existing entries.
     */
    StoreBuffer(const std::string &name, unsigned entries,
                unsigned line_bytes, bool combining);

    bool enabled() const { return entries_ > 0; }
    bool empty() const { return fifo_.empty(); }
    bool full() const { return fifo_.size() >= entries_; }
    std::size_t occupancy() const { return fifo_.size(); }
    unsigned capacity() const { return entries_; }

    /**
     * Insert a committed store of @p size bytes at @p addr.
     * @return false when the buffer is full and cannot combine
     *         (commit must stall and retry).
     */
    bool insert(Addr addr, unsigned size, Cycle now);

    /**
     * How the buffered bytes cover a load of @p size at @p addr.
     * Coverage::Full means the load can forward entirely from the
     * buffer; Partial means it must wait (the entry gets flagged for
     * priority drain).
     */
    Coverage coverage(Addr addr, unsigned size) const;

    /** Flag the entry overlapping @p addr for priority drain. */
    void requestDrain(Addr addr);

    /**
     * Flag every entry for priority drain (end-of-program flush, or a
     * barrier).  Overrides the Threshold drain policy's hold-back.
     */
    void requestDrainAll();

    /**
     * @return true if some entry is eligible to drain at @p now
     * (unblocked); used by the unit to decide whether to claim a port.
     */
    bool drainReady(Cycle now) const;

    /**
     * @return true if any entry is flagged forceDrain and eligible.
     */
    bool urgentDrainReady(Cycle now) const;

    /**
     * Produce one port access of drain work: picks the highest-priority
     * eligible entry (forceDrain first, then FIFO order) and clears one
     * @p port_width-aligned window of its valid bytes.
     * Must only be called when drainReady().
     */
    DrainOp drainOne(unsigned port_width, Cycle now);

    /**
     * The line address drainOne() would write next, without changing
     * anything.  Only valid when drainReady().
     */
    Addr peekDrainLine(Cycle now) const;

    /** Block the entry for @p line_addr until @p until (fill pending). */
    void blockEntry(Addr line_addr, Cycle until);

    /**
     * Undo a drain whose cache write was refused: put the exact bytes
     * back at the front of the FIFO (oldest position) so ordering is
     * preserved.  Always succeeds — the drain just freed the space.
     */
    void restore(const DrainOp &op, Cycle now);

    /** The valid-byte mask buffered for @p line_addr (0 if none). */
    std::uint64_t lineMask(Addr line_addr) const;

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach the event tracer (null = tracing off, the default). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the attribution profiler (null = off, the default). */
    void setProfiler(obs::Profiler *profiler) { profiler_ = profiler; }

    stats::Scalar inserts;        ///< stores accepted
    stats::Scalar combines;       ///< stores merged into a live entry
    stats::Scalar fullRejects;    ///< stores refused: buffer full
    stats::Scalar drainOps;       ///< port accesses spent draining
    stats::Scalar bytesDrained;   ///< bytes written to the cache
    stats::Scalar forwards;       ///< loads fully forwarded
    stats::Scalar partialBlocks;  ///< loads blocked on partial overlap

  private:
    /** @return mask with bits [offset, offset+size) set. */
    std::uint64_t rangeMask(unsigned offset, unsigned size) const;
    /** Find entry for @p line_addr or nullptr. */
    Entry *find(Addr line_addr);
    const Entry *find(Addr line_addr) const;

    unsigned entries_;
    unsigned lineBytes_;
    bool combining_;
    std::deque<Entry> fifo_;
    obs::Tracer *tracer_ = nullptr;
    obs::Profiler *profiler_ = nullptr;
    stats::StatGroup statGroup_;
};

} // namespace cpe::core

#endif // CPE_CORE_STORE_BUFFER_HH
