/**
 * @file
 * The line-buffer file — the paper's "load-all" technique.
 *
 * Whenever a load uses a cache port, the port returns an entire
 * port-width-aligned window of the line, not just the requested bytes.
 * That window is captured into a small fully-associative file of line
 * buffers inside the processor.  Subsequent loads whose bytes are
 * already captured are serviced from the buffer without touching a
 * port.  With a port as wide as the line ("load-all-wide"), a single
 * access captures the whole line.
 *
 * Buffers are kept coherent with the cache: stores either patch or
 * invalidate matching buffers (policy), evicted/replaced L1 lines
 * invalidate their buffers, and user/kernel transitions optionally
 * flush the file.
 */

#ifndef CPE_CORE_LINE_BUFFER_HH
#define CPE_CORE_LINE_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/port_config.hh"
#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace cpe::core {

/** Fully associative file of per-line byte-valid buffers. */
class LineBufferFile
{
  public:
    /**
     * @param name Stat-group name.
     * @param buffers Capacity; 0 disables the file entirely.
     * @param line_bytes L1 line size (8..64).
     * @param write_policy What stores do to matching buffers.
     */
    LineBufferFile(const std::string &name, unsigned buffers,
                   unsigned line_bytes,
                   LineBufferWritePolicy write_policy);

    bool enabled() const { return capacity_ > 0; }
    unsigned capacity() const { return capacity_; }

    /**
     * Can a load of @p size bytes at @p addr be serviced from a buffer?
     * On hit, updates recency and counts the hit.
     */
    bool lookup(Addr addr, unsigned size);

    /**
     * Deposit the window [@p addr, @p addr + @p width) of its line into
     * the file, except bytes in @p exclude_mask (per-byte mask over the
     * line — bytes the store buffer still owns, which would be stale in
     * the cache).  Allocates an LRU victim when the line has no buffer.
     */
    void capture(Addr addr, unsigned width, std::uint64_t exclude_mask);

    /**
     * A store wrote [@p addr, @p addr + @p size): apply the write
     * policy (patch bytes valid, or invalidate the buffer).
     */
    void onStore(Addr addr, unsigned size);

    /** The L1 line at @p line_addr was evicted or invalidated. */
    void invalidateLine(Addr line_addr);

    /** Flush the whole file (user/kernel mode switch). */
    void flushAll();

    /** Number of currently valid buffers (test helper). */
    std::size_t validBuffers() const;

    /** Valid-byte mask buffered for @p line_addr (0 if none). */
    std::uint64_t lineMask(Addr line_addr) const;

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach the event tracer (null = tracing off, the default).
     *  Events are stamped with the tracer's tracked current cycle. */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the attribution profiler (null = off, the default). */
    void setProfiler(obs::Profiler *profiler) { profiler_ = profiler; }

    stats::Scalar hits;          ///< loads serviced from a buffer
    stats::Scalar lookups;       ///< all load lookups
    stats::Scalar captures;      ///< windows deposited
    stats::Scalar storePatches;  ///< stores patched into buffers
    stats::Scalar storeInvals;   ///< buffers invalidated by stores
    stats::Scalar replacements;  ///< valid buffers displaced (LRU)
    stats::Scalar lineInvals;    ///< buffers dropped on L1 eviction
    stats::Scalar flushes;       ///< full-file flushes (mode switches)

  private:
    struct Buffer
    {
        bool valid = false;
        Addr lineAddr = 0;
        std::uint64_t byteMask = 0;
        std::uint64_t lastUse = 0;
    };

    Buffer *find(Addr line_addr);
    const Buffer *find(Addr line_addr) const;

    unsigned capacity_;
    unsigned lineBytes_;
    LineBufferWritePolicy writePolicy_;
    std::vector<Buffer> buffers_;
    std::uint64_t useClock_ = 0;
    obs::Tracer *tracer_ = nullptr;
    obs::Profiler *profiler_ = nullptr;
    stats::StatGroup statGroup_;
};

} // namespace cpe::core

#endif // CPE_CORE_LINE_BUFFER_HH
