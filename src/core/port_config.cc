#include "core/port_config.hh"

#include <sstream>

namespace cpe::core {

std::string
PortTechConfig::describe() const
{
    std::ostringstream out;
    out << ports << "p" << portWidthBytes << "B";
    if (banks > 1)
        out << "x" << banks << "bk";
    if (storeBufferEntries) {
        out << "+sb" << storeBufferEntries;
        if (storeCombining)
            out << "c";
    }
    if (lineBuffers)
        out << "+lb" << lineBuffers;
    if (fillPolicy == FillPolicy::DedicatedFillPort)
        out << "+fp";
    return out.str();
}

PortTechConfig
PortTechConfig::singlePortBase()
{
    PortTechConfig config;
    config.ports = 1;
    config.portWidthBytes = 8;
    config.storeBufferEntries = 0;
    config.lineBuffers = 0;
    return config;
}

PortTechConfig
PortTechConfig::dualPortBase()
{
    PortTechConfig config = singlePortBase();
    config.ports = 2;
    return config;
}

PortTechConfig
PortTechConfig::singlePortAllTechniques()
{
    PortTechConfig config;
    config.ports = 1;
    config.portWidthBytes = 32;
    config.storeBufferEntries = 8;
    config.storeCombining = true;
    config.drainPolicy = DrainPolicy::IdleOnly;
    config.lineBuffers = 4;
    config.lineBufferWrite = LineBufferWritePolicy::Update;
    config.flushLineBuffersOnModeSwitch = true;
    return config;
}

} // namespace cpe::core
