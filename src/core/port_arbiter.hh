/**
 * @file
 * Cycle-by-cycle arbitration for the cache data ports.
 *
 * Each port is pipelined with single-cycle initiation: it can start one
 * access per cycle, so availability is a per-port "booked through"
 * cursor.  Multi-cycle occupancy (a fill streaming a line through the
 * port) books a port for several consecutive cycles.
 */

#ifndef CPE_CORE_PORT_ARBITER_HH
#define CPE_CORE_PORT_ARBITER_HH

#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace cpe::core {

/** Books the data ports. */
class PortArbiter
{
  public:
    PortArbiter(const std::string &name, unsigned ports);

    /**
     * Try to claim any free port at @p now for @p cycles consecutive
     * cycles.  @return true and book it, or false if every port is busy.
     */
    bool tryAcquire(Cycle now, unsigned cycles = 1);

    /** @return how many ports could still start an access at @p now. */
    unsigned freePorts(Cycle now) const;

    unsigned ports() const
    {
        return static_cast<unsigned>(busyUntil_.size());
    }

    /**
     * Account one elapsed cycle for utilization statistics; call once
     * per core cycle after all acquisitions.
     */
    void tickStats(Cycle now);

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach the event tracer (null = tracing off, the default). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the attribution profiler (null = off, the default). */
    void setProfiler(obs::Profiler *profiler) { profiler_ = profiler; }

    stats::Scalar grants;       ///< successful acquisitions
    stats::Scalar rejections;   ///< acquisitions refused (all busy)
    stats::Scalar busyPortCycles; ///< port-cycles spent busy
    stats::Scalar idlePortCycles; ///< port-cycles spent idle

  private:
    /** First cycle at or after which port @p port is free. */
    std::vector<Cycle> busyUntil_;
    obs::Tracer *tracer_ = nullptr;
    obs::Profiler *profiler_ = nullptr;
    stats::StatGroup statGroup_;
};

} // namespace cpe::core

#endif // CPE_CORE_PORT_ARBITER_HH
