/**
 * @file
 * Miss Status Holding Registers: the bookkeeping that makes the L1
 * caches non-blocking.  One MSHR tracks one outstanding line fill;
 * secondary misses to the same line merge as extra targets instead of
 * issuing duplicate fills.
 */

#ifndef CPE_MEM_MSHR_HH
#define CPE_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "stats/stats.hh"
#include "util/types.hh"

namespace cpe::mem {

/** One in-flight line fill. */
struct Mshr
{
    Addr lineAddr = 0;
    Cycle readyCycle = 0;    ///< when the fill data arrives at L1
    unsigned targets = 0;    ///< merged requests waiting on this line
    bool writeIntent = false;///< any merged request was a store miss
    bool prefetch = false;   ///< speculative fill, no demand waiter yet
};

/**
 * A fixed-capacity file of MSHRs.
 */
class MshrFile
{
  public:
    /**
     * @param name Stat-group name.
     * @param entries Capacity; 0 is allowed and means "always full"
     *        (blocking cache).
     * @param max_targets Merged requests allowed per entry before the
     *        entry refuses further merges.
     */
    MshrFile(const std::string &name, unsigned entries,
             unsigned max_targets = 8);

    /** @return true when no new entry can be allocated. */
    bool full() const { return live_.size() >= entries_; }

    /** @return the in-flight entry for @p line_addr, or nullptr. */
    Mshr *find(Addr line_addr);
    const Mshr *find(Addr line_addr) const;

    /**
     * Allocate an entry for @p line_addr completing at @p ready.
     * Panics if full or duplicate — callers must check first.
     */
    Mshr &allocate(Addr line_addr, Cycle ready, bool write_intent,
                   bool prefetch = false);

    /**
     * Add a merged target to an existing entry.
     * @return false if the entry is at its target cap.
     */
    bool addTarget(Mshr &entry, bool write_intent);

    /**
     * Collect entries whose fills have arrived by @p now, removing them.
     * Entries are returned in arrival order.
     */
    std::vector<Mshr> takeReady(Cycle now);

    std::size_t occupancy() const { return live_.size(); }
    unsigned capacity() const { return entries_; }

    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach the event tracer (null = tracing off, the default). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the attribution profiler (null = off, the default). */
    void setProfiler(obs::Profiler *profiler) { profiler_ = profiler; }

    stats::Scalar allocations;
    stats::Scalar merges;       ///< secondary misses merged
    stats::Scalar fullRejects;  ///< requests rejected because full

  private:
    unsigned entries_;
    unsigned maxTargets_;
    std::vector<Mshr> live_;
    obs::Tracer *tracer_ = nullptr;
    obs::Profiler *profiler_ = nullptr;
    stats::StatGroup statGroup_;
};

} // namespace cpe::mem

#endif // CPE_MEM_MSHR_HH
