/**
 * @file
 * The shared memory system behind the two L1 caches: a unified L2 plus
 * the DRAM model.  The L1 units (fetch's I-side, the D-cache unit)
 * request line fills here and get back an arrival cycle.
 */

#ifndef CPE_MEM_HIERARCHY_HH
#define CPE_MEM_HIERARCHY_HH

#include <algorithm>
#include <string>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "stats/stats.hh"

namespace cpe::mem {

/** L2 timing parameters layered onto a CacheParams geometry. */
struct L2Params
{
    CacheParams cache{
        .name = "l2", .sizeBytes = 512 * 1024, .assoc = 4, .lineBytes = 32};
    /** L2 hit latency (request to data at L1), cycles. */
    unsigned hitLatency = 8;
    /** Minimum spacing between L2 accesses (bank occupancy), cycles. */
    unsigned cyclesPerAccess = 1;
};

/**
 * Unified L2 + DRAM.  All methods are latency oracles: they update
 * occupancy state and return when data will be ready; there is no
 * per-cycle tick.
 */
class MemHierarchy
{
  public:
    MemHierarchy(const L2Params &l2_params, const DramParams &dram_params);

    /**
     * Request the line containing @p addr for an L1 fill.
     * @return the cycle the full line arrives at the L1.
     */
    Cycle fetchLine(Addr addr, Cycle now);

    /**
     * Accept a dirty line written back from an L1.  Consumes L2 (and
     * possibly DRAM) bandwidth; the L1 does not wait.
     */
    void writebackLine(Addr addr, Cycle now);

    /**
     * Warm-only update (fast-forward phases of a sampled run): the L2
     * content transitions of fetchLine()/writebackLine() — lookup,
     * write-allocate on miss, @p dirty marking — with no timing
     * bookings, statistics, or DRAM traffic modeling.
     */
    void warmLine(Addr addr, bool dirty = false);

    Cache &l2() { return l2_; }
    Dram &dram() { return dram_; }

    stats::StatGroup &statGroup() { return statGroup_; }

  private:
    /** Book the L2 array; @return access start cycle. */
    Cycle bookL2(Cycle now);

    L2Params params_;
    Cache l2_;
    Dram dram_;
    Cycle l2BusyUntil_ = 0;
    stats::StatGroup statGroup_;
};

} // namespace cpe::mem

#endif // CPE_MEM_HIERARCHY_HH
