/**
 * @file
 * Set-associative cache state model (tags, replacement, dirty bits).
 *
 * This class models cache *contents*; access latency, ports, and miss
 * handling are orchestrated by the units that own a Cache (the D-cache
 * unit in src/core, the fetch unit's I-cache path, and the L2 inside
 * MemHierarchy).  Keeping state separate from timing lets the same
 * model back every level and makes the state machine unit-testable.
 */

#ifndef CPE_MEM_CACHE_HH
#define CPE_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profiler.hh"
#include "obs/tracer.hh"
#include "stats/stats.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace cpe::mem {

/** Replacement policy selector. */
enum class ReplPolicy : std::uint8_t { LRU, Random };

/** Geometry and policy of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 16 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 32;
    ReplPolicy repl = ReplPolicy::LRU;
    /** Seed for the Random replacement policy. */
    std::uint64_t replSeed = 1;

    /** @return number of sets implied by the geometry. */
    unsigned sets() const
    {
        return static_cast<unsigned>(sizeBytes / (assoc * lineBytes));
    }
};

/**
 * Tag array + replacement state of a write-back, write-allocate cache.
 */
class Cache
{
  public:
    /** Outcome of allocating a line (fill). */
    struct FillResult
    {
        bool evicted = false;      ///< a valid line was displaced
        Addr evictedAddr = 0;      ///< its line address
        bool evictedDirty = false; ///< it needs a writeback
    };

    explicit Cache(const CacheParams &params);

    /** @return line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }
    unsigned lineBytes() const { return params_.lineBytes; }
    const CacheParams &params() const { return params_; }

    /**
     * Look up @p addr without changing any state (no LRU update).
     * @return true on hit.
     */
    bool probe(Addr addr) const;

    /**
     * Perform a demand access: on hit updates recency (and the dirty
     * bit when @p write).  Misses change nothing — the caller decides
     * whether/when to fill().
     * @return true on hit.
     */
    bool access(Addr addr, bool write);

    /**
     * Allocate the line containing @p addr, evicting the replacement
     * victim if the set is full.  The new line's dirty bit starts at
     * @p dirty.  Must not be called when the line is already present.
     */
    FillResult fill(Addr addr, bool dirty = false);

    /**
     * Warm-only update path (fast-forward phases of a sampled run):
     * the same state transitions as access() followed — on a miss —
     * by a write-allocate fill(), but with no statistics, tracer, or
     * profiler activity, so warming leaves every observable counter
     * untouched.  The displaced victim (when any) is reported through
     * @p evicted so the caller can keep the next level's dirty state
     * coherent.
     * @return true on hit.
     */
    bool warmAccess(Addr addr, bool write,
                    FillResult *evicted = nullptr);

    /**
     * Drop the line containing @p addr if present.
     * @return true if a line was invalidated.
     */
    bool invalidate(Addr addr);

    /** Mark the line dirty; panics if not present. */
    void setDirty(Addr addr);

    /** @return true if present and dirty. */
    bool isDirty(Addr addr) const;

    /** Invalidate everything (loses dirty data; tests only). */
    void flushAll();

    /** Count of valid lines (test/debug helper). */
    std::size_t validLines() const;

    /** Statistics group (hits/misses/evictions). */
    stats::StatGroup &statGroup() { return statGroup_; }

    /** Attach the event tracer (null = tracing off, the default);
     *  evictions are stamped with the tracer's tracked cycle. */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Attach the attribution profiler (null = off, the default). */
    void setProfiler(obs::Profiler *profiler) { profiler_ = profiler; }

    /** Raw counters, exposed for formulas in owning units. */
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;
    stats::Scalar writebacks;  ///< dirty evictions

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;  ///< LRU timestamp
    };

    /**
     * Set index and tag of one address, derived with a single shift:
     * the tag keeps the set bits, so the set index is just the tag's
     * low bits — every lookup path computes this once and reuses it.
     */
    struct Loc
    {
        std::size_t set;
        Addr tag;
    };
    Loc
    locate(Addr addr) const
    {
        Addr tag = addr >> setShift_;
        return {static_cast<std::size_t>(tag) & setMask_, tag};
    }

    /** Find the way holding @p addr, or -1. */
    int findWay(std::size_t set, Addr tag) const;
    /** Pick a victim way in @p set (invalid first, then policy). */
    unsigned victimWay(std::size_t set);

    /** Forget the memoized most-recent hit (any structural change). */
    void
    forgetLastHit()
    {
        lastHitTag_ = NoTag;
    }

    /** Tag value no in-range address produces (addresses < 2^63). */
    static constexpr Addr NoTag = ~Addr(0);

    CacheParams params_;
    Addr lineMask_;
    unsigned setShift_;
    std::size_t setMask_;
    std::vector<Line> lines_;  ///< sets * assoc, row-major by set
    std::uint64_t useClock_ = 0;
    // One-entry MRU filter for access(): the tag uniquely identifies a
    // line (it retains the set bits), so a repeat access skips the way
    // search entirely.  Invalidated on fill/invalidate/flushAll.
    Addr lastHitTag_ = NoTag;
    std::size_t lastHitLine_ = 0;  ///< index into lines_
    Rng rng_;
    obs::Tracer *tracer_ = nullptr;
    obs::Profiler *profiler_ = nullptr;
    stats::StatGroup statGroup_;
};

} // namespace cpe::mem

#endif // CPE_MEM_CACHE_HH
