#include "mem/cache.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace cpe::mem {

Cache::Cache(const CacheParams &params)
    : params_(params), rng_(params.replSeed), statGroup_(params.name)
{
    CPE_ASSERT(isPowerOf2(params_.lineBytes), "line size not a power of 2");
    CPE_ASSERT(params_.assoc >= 1, "associativity must be >= 1");
    CPE_ASSERT(params_.sizeBytes %
                       (params_.assoc * params_.lineBytes) == 0,
               "cache size not divisible by assoc * line");
    unsigned sets = params_.sets();
    CPE_ASSERT(isPowerOf2(sets), "set count not a power of 2");

    lineMask_ = params_.lineBytes - 1;
    setShift_ = floorLog2(params_.lineBytes);
    setMask_ = sets - 1;
    lines_.assign(static_cast<std::size_t>(sets) * params_.assoc, Line{});

    statGroup_.addScalar("hits", &hits, "demand accesses that hit");
    statGroup_.addScalar("misses", &misses, "demand accesses that missed");
    statGroup_.addScalar("evictions", &evictions, "valid lines displaced");
    statGroup_.addScalar("writebacks", &writebacks,
                         "dirty lines displaced");
    statGroup_.addFormula(
        "miss_rate",
        [this]() {
            std::uint64_t total = hits.value() + misses.value();
            return total ? static_cast<double>(misses.value()) / total : 0.0;
        },
        "misses / (hits + misses)");
}

int
Cache::findWay(std::size_t set, Addr tag) const
{
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return static_cast<int>(way);
    }
    return -1;
}

bool
Cache::probe(Addr addr) const
{
    Loc loc = locate(addr);
    return findWay(loc.set, loc.tag) >= 0;
}

bool
Cache::access(Addr addr, bool write)
{
    Loc loc = locate(addr);
    if (loc.tag == lastHitTag_) {
        Line &line = lines_[lastHitLine_];
        line.lastUse = ++useClock_;
        if (write)
            line.dirty = true;
        ++hits;
        if (profiler_)
            profiler_->onSetAccess(loc.set, true);
        return true;
    }
    int way = findWay(loc.set, loc.tag);
    if (way < 0) {
        ++misses;
        if (profiler_)
            profiler_->onSetAccess(loc.set, false);
        return false;
    }
    std::size_t index = loc.set * params_.assoc + static_cast<unsigned>(way);
    Line &line = lines_[index];
    line.lastUse = ++useClock_;
    if (write)
        line.dirty = true;
    ++hits;
    if (profiler_)
        profiler_->onSetAccess(loc.set, true);
    lastHitTag_ = loc.tag;
    lastHitLine_ = index;
    return true;
}

bool
Cache::warmAccess(Addr addr, bool write, FillResult *evicted)
{
    Loc loc = locate(addr);
    if (loc.tag == lastHitTag_) {
        Line &line = lines_[lastHitLine_];
        line.lastUse = ++useClock_;
        if (write)
            line.dirty = true;
        return true;
    }
    int way = findWay(loc.set, loc.tag);
    if (way >= 0) {
        std::size_t index =
            loc.set * params_.assoc + static_cast<unsigned>(way);
        Line &line = lines_[index];
        line.lastUse = ++useClock_;
        if (write)
            line.dirty = true;
        lastHitTag_ = loc.tag;
        lastHitLine_ = index;
        return true;
    }

    // Miss: write-allocate silently (state only, no counters).
    forgetLastHit();
    unsigned victim = victimWay(loc.set);
    Line &line = lines_[loc.set * params_.assoc + victim];
    if (line.valid && evicted) {
        evicted->evicted = true;
        evicted->evictedAddr = (line.tag << setShift_);
        evicted->evictedDirty = line.dirty;
    }
    line.valid = true;
    line.dirty = write;
    line.tag = loc.tag;
    line.lastUse = ++useClock_;
    return false;
}

unsigned
Cache::victimWay(std::size_t set)
{
    Line *base = &lines_[set * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way)
        if (!base[way].valid)
            return way;

    if (params_.repl == ReplPolicy::Random)
        return static_cast<unsigned>(rng_.below(params_.assoc));

    unsigned lru = 0;
    for (unsigned way = 1; way < params_.assoc; ++way)
        if (base[way].lastUse < base[lru].lastUse)
            lru = way;
    return lru;
}

Cache::FillResult
Cache::fill(Addr addr, bool dirty)
{
    Loc loc = locate(addr);
    std::size_t set = loc.set;
    Addr tag = loc.tag;
    forgetLastHit();
    CPE_ASSERT(findWay(set, tag) < 0,
               params_.name << ": fill of already-present line 0x"
                            << std::hex << lineAddr(addr));

    unsigned way = victimWay(set);
    Line &line = lines_[set * params_.assoc + way];

    FillResult result;
    if (line.valid) {
        result.evicted = true;
        result.evictedAddr = (line.tag << setShift_);
        result.evictedDirty = line.dirty;
        ++evictions;
        if (line.dirty)
            ++writebacks;
        if (tracer_)
            tracer_->recordNow(obs::EventKind::CacheEvict,
                               result.evictedAddr, result.evictedDirty);
        if (profiler_)
            profiler_->onSetEviction(set);
    }
    line.valid = true;
    line.dirty = dirty;
    line.tag = tag;
    line.lastUse = ++useClock_;
    return result;
}

bool
Cache::invalidate(Addr addr)
{
    Loc loc = locate(addr);
    int way = findWay(loc.set, loc.tag);
    if (way < 0)
        return false;
    forgetLastHit();
    lines_[loc.set * params_.assoc + static_cast<unsigned>(way)] = Line{};
    return true;
}

void
Cache::setDirty(Addr addr)
{
    Loc loc = locate(addr);
    int way = findWay(loc.set, loc.tag);
    CPE_ASSERT(way >= 0, params_.name << ": setDirty on absent line");
    lines_[loc.set * params_.assoc + static_cast<unsigned>(way)].dirty =
        true;
}

bool
Cache::isDirty(Addr addr) const
{
    Loc loc = locate(addr);
    int way = findWay(loc.set, loc.tag);
    return way >= 0 &&
           lines_[loc.set * params_.assoc + static_cast<unsigned>(way)]
               .dirty;
}

void
Cache::flushAll()
{
    forgetLastHit();
    for (auto &line : lines_)
        line = Line{};
}

std::size_t
Cache::validLines() const
{
    std::size_t count = 0;
    for (const auto &line : lines_)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace cpe::mem
