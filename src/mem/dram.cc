#include "mem/dram.hh"

#include <algorithm>

namespace cpe::mem {

Dram::Dram(const DramParams &params, std::string name)
    : params_(params), statGroup_(std::move(name))
{
    statGroup_.addScalar("reads", &reads, "line reads (fills)");
    statGroup_.addScalar("writes", &writes, "line writes (writebacks)");
    statGroup_.addAverage("queue_delay", &queueDelay,
                          "cycles spent waiting for the memory bus");
}

Cycle
Dram::bookBus(Cycle now)
{
    Cycle start = std::max(now, busBusyUntil_);
    queueDelay.sample(static_cast<double>(start - now));
    busBusyUntil_ = start + params_.cyclesPerLine;
    return start;
}

Cycle
Dram::readLine(Cycle now)
{
    ++reads;
    Cycle start = bookBus(now);
    return start + params_.latency;
}

void
Dram::writeLine(Cycle now)
{
    ++writes;
    bookBus(now);
}

} // namespace cpe::mem
