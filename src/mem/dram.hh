/**
 * @file
 * Simple main-memory timing model: fixed access latency plus a single
 * shared data bus with limited bandwidth, which is what bounds fill
 * traffic in the paper's machine model.
 */

#ifndef CPE_MEM_DRAM_HH
#define CPE_MEM_DRAM_HH

#include <string>

#include "stats/stats.hh"
#include "util/types.hh"

namespace cpe::mem {

/** Main-memory timing parameters. */
struct DramParams
{
    /** Cycles from request to first data. */
    unsigned latency = 50;
    /** Bus occupancy per line transfer (cycles the bus is busy). */
    unsigned cyclesPerLine = 4;
};

/**
 * Occupancy-based DRAM model.  Requests queue on the bus: each line
 * transfer holds the bus for cyclesPerLine, and data arrives latency
 * cycles after the transfer starts.
 */
class Dram
{
  public:
    explicit Dram(const DramParams &params, std::string name = "dram");

    /**
     * Schedule a line read beginning no earlier than @p now.
     * @return the cycle the line is available to the requester.
     */
    Cycle readLine(Cycle now);

    /**
     * Schedule a line writeback; consumes bus bandwidth but the caller
     * does not wait for completion.
     */
    void writeLine(Cycle now);

    /** Cycle until which the bus is currently booked. */
    Cycle busBusyUntil() const { return busBusyUntil_; }

    stats::StatGroup &statGroup() { return statGroup_; }

    stats::Scalar reads;
    stats::Scalar writes;
    stats::Average queueDelay;  ///< cycles requests waited for the bus

  private:
    /** Book the bus; @return the transfer start cycle. */
    Cycle bookBus(Cycle now);

    DramParams params_;
    Cycle busBusyUntil_ = 0;
    stats::StatGroup statGroup_;
};

} // namespace cpe::mem

#endif // CPE_MEM_DRAM_HH
