#include "mem/hierarchy.hh"

namespace cpe::mem {

MemHierarchy::MemHierarchy(const L2Params &l2_params,
                           const DramParams &dram_params)
    : params_(l2_params), l2_(l2_params.cache), dram_(dram_params),
      statGroup_("memsys")
{
    statGroup_.addChild(&l2_.statGroup());
    statGroup_.addChild(&dram_.statGroup());
}

Cycle
MemHierarchy::bookL2(Cycle now)
{
    Cycle start = std::max(now, l2BusyUntil_);
    l2BusyUntil_ = start + params_.cyclesPerAccess;
    return start;
}

Cycle
MemHierarchy::fetchLine(Addr addr, Cycle now)
{
    Cycle start = bookL2(now);
    if (l2_.access(addr, false))
        return start + params_.hitLatency;

    // L2 miss: fetch from DRAM, install in L2, forward to L1.
    Cycle dram_done = dram_.readLine(start + params_.hitLatency);
    auto fill = l2_.fill(addr, false);
    if (fill.evicted && fill.evictedDirty)
        dram_.writeLine(dram_done);
    return dram_done + params_.hitLatency;
}

void
MemHierarchy::warmLine(Addr addr, bool dirty)
{
    l2_.warmAccess(addr, dirty);
}

void
MemHierarchy::writebackLine(Addr addr, Cycle now)
{
    Cycle start = bookL2(now);
    if (l2_.access(addr, true))
        return;
    // Write-allocate at L2: pull the line (cheaply modeled as a DRAM
    // read) and install it dirty.
    dram_.readLine(start + params_.hitLatency);
    auto fill = l2_.fill(addr, true);
    if (fill.evicted && fill.evictedDirty)
        dram_.writeLine(start + params_.hitLatency);
}

} // namespace cpe::mem
