#include "mem/mshr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cpe::mem {

MshrFile::MshrFile(const std::string &name, unsigned entries,
                   unsigned max_targets)
    : entries_(entries), maxTargets_(max_targets), statGroup_(name)
{
    statGroup_.addScalar("allocations", &allocations,
                         "primary misses that allocated an MSHR");
    statGroup_.addScalar("merges", &merges,
                         "secondary misses merged into an MSHR");
    statGroup_.addScalar("full_rejects", &fullRejects,
                         "requests rejected with all MSHRs busy");
}

Mshr *
MshrFile::find(Addr line_addr)
{
    for (auto &entry : live_)
        if (entry.lineAddr == line_addr)
            return &entry;
    return nullptr;
}

const Mshr *
MshrFile::find(Addr line_addr) const
{
    for (const auto &entry : live_)
        if (entry.lineAddr == line_addr)
            return &entry;
    return nullptr;
}

Mshr &
MshrFile::allocate(Addr line_addr, Cycle ready, bool write_intent,
                   bool prefetch)
{
    CPE_ASSERT(!full(), "MSHR allocate when full");
    CPE_ASSERT(!find(line_addr), "duplicate MSHR for line 0x"
                                     << std::hex << line_addr);
    ++allocations;
    live_.push_back(
        Mshr{line_addr, ready, prefetch ? 0u : 1u, write_intent,
             prefetch});
    if (tracer_)
        tracer_->recordNow(obs::EventKind::MshrAlloc, line_addr,
                           write_intent, prefetch);
    if (profiler_)
        profiler_->onMshrAlloc();
    return live_.back();
}

bool
MshrFile::addTarget(Mshr &entry, bool write_intent)
{
    if (entry.targets >= maxTargets_)
        return false;
    ++entry.targets;
    entry.writeIntent = entry.writeIntent || write_intent;
    ++merges;
    return true;
}

std::vector<Mshr>
MshrFile::takeReady(Cycle now)
{
    std::vector<Mshr> ready;
    auto it = live_.begin();
    while (it != live_.end()) {
        if (it->readyCycle <= now) {
            if (tracer_)
                tracer_->record(now, obs::EventKind::MshrRetire,
                                it->lineAddr);
            ready.push_back(*it);
            it = live_.erase(it);
        } else {
            ++it;
        }
    }
    std::sort(ready.begin(), ready.end(),
              [](const Mshr &a, const Mshr &b) {
                  return a.readyCycle < b.readyCycle;
              });
    return ready;
}

} // namespace cpe::mem
