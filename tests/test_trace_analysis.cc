/**
 * @file
 * Unit tests for the offline trace analyzer (obs/analysis.hh, the
 * library behind cpe_trace): real traces produced by full simulations
 * must parse, validate clean, and summarize consistently; corrupted
 * traces — lost events, unknown kinds, failing sinks — must be caught
 * by the same lint, never silently accepted.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hh"
#include "obs/tracer.hh"
#include "sim/simulator.hh"
#include "util/error.hh"
#include "util/json.hh"

namespace cpe::obs {
namespace {

sim::SimConfig
tracedConfig(const std::string &workload, TraceSink *sink)
{
    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        core::PortTechConfig::singlePortAllTechniques();
    config.obs.traceSink = sink;
    config.obs.sampleCycles = 2000;
    return config;
}

std::string
tracedRunText(const std::string &workload)
{
    StringTraceSink sink;
    sim::simulate(tracedConfig(workload, &sink));
    return sink.text();
}

TraceFile
parseText(const std::string &text)
{
    std::istringstream in(text);
    return parseTrace(in, "test trace");
}

std::string
joined(const std::vector<std::string> &problems)
{
    std::string all;
    for (const auto &problem : problems)
        all += problem + "\n";
    return all;
}

TEST(TraceAnalysis, RealTraceParsesAndValidatesClean)
{
    TraceFile file = parseText(tracedRunText("copy"));
    ASSERT_EQ(file.runs.size(), 1u);
    const TraceRun &run = file.runs.front();
    EXPECT_EQ(run.id, 0u);
    ASSERT_TRUE(run.begin.isObject());
    ASSERT_TRUE(run.end.isObject());
    EXPECT_EQ(run.workload(), "copy");
    EXPECT_FALSE(run.configTag().empty());
    EXPECT_GT(run.l1dSets(), 0u);
    EXPECT_GT(run.lineBytes(), 0u);
    EXPECT_FALSE(run.events.empty());
    EXPECT_FALSE(run.intervals.empty());
    EXPECT_TRUE(run.unknownKinds.empty());

    std::vector<std::string> problems = validateRun(run);
    EXPECT_TRUE(problems.empty()) << joined(problems);
}

TEST(TraceAnalysis, InterleavedRunsStayApart)
{
    StringTraceSink sink;
    sim::simulate(tracedConfig("copy", &sink));
    sim::simulate(tracedConfig("crc", &sink));

    TraceFile file = parseText(sink.text());
    ASSERT_EQ(file.runs.size(), 2u);
    ASSERT_TRUE(file.findRun(0));
    ASSERT_TRUE(file.findRun(1));
    EXPECT_FALSE(file.findRun(7));
    EXPECT_EQ(file.findRun(0)->workload(), "copy");
    EXPECT_EQ(file.findRun(1)->workload(), "crc");
    for (const TraceRun &run : file.runs) {
        std::vector<std::string> problems = validateRun(run);
        EXPECT_TRUE(problems.empty())
            << "run " << run.id << ":\n" << joined(problems);
    }
}

TEST(TraceAnalysis, SummaryAgreesWithFooter)
{
    TraceFile file = parseText(tracedRunText("copy"));
    const TraceRun &run = file.runs.front();
    Json summary = summarizeRun(run);

    auto field = [&summary](const char *name) {
        return static_cast<std::uint64_t>(
            summary.at(name, "summary").asNumber());
    };
    EXPECT_EQ(field("cycles"), static_cast<std::uint64_t>(
                                   run.end.at("cycles").asNumber()));
    EXPECT_EQ(field("insts"), static_cast<std::uint64_t>(
                                  run.end.at("insts").asNumber()));
    EXPECT_EQ(field("events"), run.events.size());
    EXPECT_EQ(field("dropped"), 0u);
    EXPECT_TRUE(summary.at("stalls", "summary").find("port_conflict"));

    std::string table = summaryTable(summary);
    EXPECT_NE(table.find("cycles"), std::string::npos);
    EXPECT_NE(table.find("stall:port_conflict"), std::string::npos);
}

TEST(TraceAnalysis, HotAndHeatmapRenderFromGeometry)
{
    TraceFile file = parseText(tracedRunText("copy"));
    const TraceRun &run = file.runs.front();

    std::string by_pc = hotReport(run, 5, HotBy::Pc);
    EXPECT_NE(by_pc.find("pc"), std::string::npos);
    EXPECT_NE(by_pc.find("0x"), std::string::npos);
    std::string by_line = hotReport(run, 5, HotBy::Line);
    EXPECT_NE(by_line.find("line"), std::string::npos);
    EXPECT_NE(by_line.find("0x"), std::string::npos);

    std::string csv = heatmapCsv(run);
    EXPECT_EQ(csv.rfind("set,mshr_allocs,fills,evictions,lb_hits\n", 0),
              0u);
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, run.l1dSets() + 1u);
}

TEST(TraceAnalysis, HeatmapNeedsGeometry)
{
    // A trace from before the schema carried l1d_sets/line_bytes.
    TraceFile file = parseText(
        "{\"t\":\"run_begin\",\"r\":0,\"workload\":\"old\"}\n"
        "{\"t\":\"run_end\",\"r\":0,\"cycles\":1,\"insts\":0,"
        "\"events\":0,\"dropped\":0}\n");
    ASSERT_EQ(file.runs.size(), 1u);
    EXPECT_EQ(file.runs.front().l1dSets(), 0u);
    EXPECT_THROW(heatmapCsv(file.runs.front()), ConfigError);
}

TEST(TraceAnalysis, ValidateFlagsLostEvents)
{
    std::string text = tracedRunText("copy");
    // Delete one mid-stream event line: the seq chain breaks and the
    // footer's event count no longer matches the stream.
    std::size_t cut = text.find("\"s\":10,");
    ASSERT_NE(cut, std::string::npos);
    std::size_t start = text.rfind('\n', cut) + 1;
    std::size_t end = text.find('\n', cut) + 1;
    text.erase(start, end - start);

    TraceFile file = parseText(text);
    std::string problems = joined(validateRun(file.runs.front()));
    EXPECT_NE(problems.find("seq"), std::string::npos) << problems;
    EXPECT_NE(problems.find("claims"), std::string::npos) << problems;
}

TEST(TraceAnalysis, ValidateFlagsUnknownKinds)
{
    TraceFile file = parseText(
        "{\"t\":\"run_begin\",\"r\":0,\"workload\":\"x\","
        "\"config\":\"y\"}\n"
        "{\"t\":\"ev\",\"r\":0,\"s\":0,\"c\":1,\"k\":\"bogus_kind\"}\n"
        "{\"t\":\"run_end\",\"r\":0,\"cycles\":1,\"insts\":0,"
        "\"events\":1,\"dropped\":0}\n");
    ASSERT_EQ(file.runs.size(), 1u);
    const TraceRun &run = file.runs.front();
    ASSERT_EQ(run.unknownKinds.size(), 1u);
    EXPECT_EQ(run.unknownKinds.front(), "bogus_kind");
    std::string problems = joined(validateRun(run));
    EXPECT_NE(problems.find("bogus_kind"), std::string::npos);
}

TEST(TraceAnalysis, TruncatedTraceIsFlaggedNotTrusted)
{
    TraceFile file = parseText(
        "{\"t\":\"run_begin\",\"r\":0,\"workload\":\"x\"}\n"
        "{\"t\":\"ev\",\"r\":0,\"s\":0,\"c\":1,\"k\":\"commit\","
        "\"a\":1}\n");
    std::string problems = joined(validateRun(file.runs.front()));
    EXPECT_NE(problems.find("run_end"), std::string::npos) << problems;
}

TEST(TraceAnalysis, MalformedLinesThrow)
{
    EXPECT_THROW(parseText("{oops\n"), IoError);
    EXPECT_THROW(parseText("{\"r\":0}\n"), IoError);  // no "t"
    EXPECT_THROW(parseText("{\"t\":\"mystery\",\"r\":0}\n"), IoError);
    EXPECT_THROW(loadTraceFile("/nonexistent/trace.jsonl"), IoError);
}

/** A sink that fails exactly one write, then recovers. */
class FlakySink : public TraceSink
{
  public:
    explicit FlakySink(unsigned fail_on) : failOn_(fail_on) {}

    void
    write(const char *data, std::size_t size) override
    {
        if (writes_++ == failOn_)
            throw IoError("injected sink failure");
        text_.append(data, size);
    }

    const std::string &text() const { return text_; }

  private:
    std::string text_;
    unsigned writes_ = 0;
    unsigned failOn_;
};

TEST(TraceAnalysis, DroppedEventsAreCountedAndFlagged)
{
    // Write 0 is the run_begin header; write 1 — the first event
    // batch — fails, dropping those three events.  The run keeps
    // going and the footer must confess.
    FlakySink sink(1);
    Tracer tracer;
    tracer.beginRun(&sink, "flaky", "cfg", 0);
    tracer.record(1, EventKind::Commit, 0, 1);
    tracer.record(2, EventKind::Commit, 0, 1);
    tracer.record(3, EventKind::Commit, 0, 1);
    tracer.flush();
    EXPECT_EQ(tracer.eventsDropped(), 3u);
    tracer.record(4, EventKind::Commit, 0, 1);
    tracer.endRun(4, 4, 1.0, Json::object());

    TraceFile file = parseText(sink.text());
    ASSERT_EQ(file.runs.size(), 1u);
    const TraceRun &run = file.runs.front();
    EXPECT_EQ(run.events.size(), 1u);  // only the post-failure event
    EXPECT_EQ(static_cast<std::uint64_t>(
                  run.end.at("dropped").asNumber()),
              3u);
    std::string problems = joined(validateRun(run));
    EXPECT_NE(problems.find("dropped"), std::string::npos) << problems;

    Json summary = summarizeRun(run);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  summary.at("dropped").asNumber()),
              3u);
}

TEST(TraceAnalysis, CleanSinkDropsNothing)
{
    StringTraceSink sink;
    Tracer tracer;
    tracer.beginRun(&sink, "clean", "cfg", 0);
    tracer.record(1, EventKind::Commit, 0, 1);
    tracer.endRun(1, 1, 1.0, Json::object());
    EXPECT_EQ(tracer.eventsDropped(), 0u);

    TraceFile file = parseText(sink.text());
    const TraceRun &run = file.runs.front();
    EXPECT_EQ(static_cast<std::uint64_t>(
                  run.end.at("dropped").asNumber()),
              0u);
    std::vector<std::string> problems = validateRun(run);
    EXPECT_TRUE(problems.empty()) << joined(problems);
}

} // namespace
} // namespace cpe::obs
