/**
 * @file
 * The served-vs-direct differential: a grid served by cpe_serve — cold
 * store, warm store, concurrent duplicate clients, or restarted over a
 * half-populated store left by a killed server — must be byte-identical
 * to a direct SweepRunner run of the same configs.  The server and its
 * result store are pure memoization: they may change *when* a run
 * executes (or whether it executes at all), never *what* it computes.
 */

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "serve/client.hh"
#include "serve/result_store.hh"
#include "serve/server.hh"
#include "sim/config_file.hh"
#include "sim/report.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace cpe {
namespace {

/** The reduced F5 grid both sides run: every variant, one workload. */
std::vector<sim::SimConfig>
f5Configs()
{
    const exp::Experiment &f5 =
        exp::ExperimentRegistry::instance().get("F5");
    return exp::suiteConfigs(f5.variants(), {"crc"});
}

/** The direct (serverless) grid, simulated once per test binary. */
const std::string &
directGolden()
{
    static const std::string golden = []() {
        VerboseScope quiet(false);
        return sim::SweepRunner(1).runGrid(f5Configs()).toJson().dump(2);
    }();
    return golden;
}

/** A scratch store directory + socket path, removed on scope exit. */
struct ScratchDir
{
    std::filesystem::path dir;

    explicit ScratchDir(const std::string &name)
        : dir(std::filesystem::temp_directory_path() /
              (name + "." + std::to_string(::getpid())))
    {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string store() const { return (dir / "store").string(); }
    std::string socket() const { return (dir / "sock").string(); }
};

serve::SweepRequest
f5Request()
{
    serve::SweepRequest request;
    request.experiment = "F5";
    request.workloads = {"crc"};
    return request;
}

struct SweepCapture
{
    sim::ResultGrid grid{"IPC"};
    serve::RequestTally tally;
    bool done = false;
};

double
number(const Json &doc, const char *key)
{
    const Json *value = doc.find(key);
    return value && value->isNumber() ? value->asNumber() : 0.0;
}

/** Run one sweep and rebuild the grid from its result records. */
SweepCapture
servedSweep(const std::string &socket_path,
            const serve::SweepRequest &request)
{
    SweepCapture capture;
    serve::Client client(socket_path);
    Json terminal = client.sweep(request, [&](const Json &record) {
        const Json *type = record.find("t");
        if (!type || !type->isString() || type->asString() != "result")
            return;
        capture.grid.add(
            sim::resultFromJson(record.at("result", "result record")));
    });
    const Json *type = terminal.find("t");
    capture.done =
        type && type->isString() && type->asString() == "done";
    if (capture.done) {
        const Json &tally = terminal.at("tally", "done record");
        capture.tally.runs =
            static_cast<std::uint64_t>(number(tally, "runs"));
        capture.tally.storeHits =
            static_cast<std::uint64_t>(number(tally, "store_hits"));
        capture.tally.shared =
            static_cast<std::uint64_t>(number(tally, "shared"));
        capture.tally.simulated =
            static_cast<std::uint64_t>(number(tally, "simulated"));
        capture.tally.errors =
            static_cast<std::uint64_t>(number(tally, "errors"));
        capture.tally.cancelled =
            static_cast<std::uint64_t>(number(tally, "cancelled"));
    }
    return capture;
}

TEST(ServeDifferential, ColdThenWarmServedGridsMatchDirect)
{
    VerboseScope quiet(false);
    const std::size_t runs = f5Configs().size();
    ScratchDir scratch("cpe_serve_diff_coldwarm");
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 2;
    serve::Server server(options, &store);
    server.start();

    // Cold: every run simulates, and the served grid is byte-identical
    // to the direct one.
    SweepCapture cold = servedSweep(scratch.socket(), f5Request());
    ASSERT_TRUE(cold.done);
    EXPECT_EQ(cold.tally.runs, runs);
    EXPECT_EQ(cold.tally.simulated, runs);
    EXPECT_EQ(cold.tally.storeHits, 0u);
    EXPECT_EQ(cold.tally.errors, 0u);
    EXPECT_EQ(cold.grid.toJson().dump(2), directGolden());

    // Warm: zero simulations, and still byte-identical.
    SweepCapture warm = servedSweep(scratch.socket(), f5Request());
    ASSERT_TRUE(warm.done);
    EXPECT_EQ(warm.tally.storeHits, runs);
    EXPECT_EQ(warm.tally.simulated, 0u);
    EXPECT_EQ(warm.grid.toJson().dump(2), directGolden());

    server.stop();
    EXPECT_EQ(store.entries(), runs);
}

TEST(ServeDifferential, ConcurrentDuplicateClientsSimulateEachRunOnce)
{
    VerboseScope quiet(false);
    const std::size_t runs = f5Configs().size();
    ScratchDir scratch("cpe_serve_diff_concurrent");
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 2;
    serve::Server server(options, &store);
    server.start();

    // Two identical requests race against a cold store: single-flight
    // dedup must keep total executions at exactly one per config, and
    // both clients must still receive the full byte-identical grid.
    SweepCapture captures[2];
    std::thread clients[2];
    for (int i = 0; i < 2; ++i)
        clients[i] = std::thread([&, i]() {
            captures[i] = servedSweep(scratch.socket(), f5Request());
        });
    for (auto &thread : clients)
        thread.join();

    for (const SweepCapture &capture : captures) {
        ASSERT_TRUE(capture.done);
        EXPECT_EQ(capture.tally.runs, runs);
        EXPECT_EQ(capture.tally.errors, 0u);
        EXPECT_EQ(capture.grid.toJson().dump(2), directGolden());
    }
    serve::Server::Stats stats = server.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.simulated, runs)
        << "duplicate concurrent requests must not re-simulate";
    EXPECT_EQ(stats.storeHits + stats.shared, runs);
    EXPECT_EQ(store.stats().computes, runs);

    server.stop();
}

TEST(ServeDifferential, KillAndRestartMidGridStitchesByteIdenticalGrid)
{
    VerboseScope quiet(false);
    std::vector<sim::SimConfig> configs = f5Configs();
    const std::size_t runs = configs.size();
    ASSERT_GE(runs, 4u);
    const std::size_t completed = 3;
    ScratchDir scratch("cpe_serve_diff_restart");

    // Model a server killed mid-grid: K complete entries, one torn
    // entry a crash tore mid-write (impossible via the tmp+rename
    // discipline, but disks and operators do worse), and an orphaned
    // tmp file from an interrupted publish.
    {
        serve::ResultStore store(scratch.store());
        for (std::size_t i = 0; i < completed; ++i) {
            std::string key = serve::ResultStore::keyFor(
                sim::toMachineFile(configs[i]), "F5");
            store.insert(key, sim::simulate(configs[i]));
        }
        std::string torn_key = serve::ResultStore::keyFor(
            sim::toMachineFile(configs[completed]), "F5");
        std::ofstream torn(store.entryPath(torn_key),
                           std::ios::binary | std::ios::trunc);
        torn << "{\"t\":\"entry\",\"k\":\"" << torn_key << "\",\"ver";
    }
    {
        std::ofstream orphan(std::filesystem::path(scratch.store()) /
                             "deadbeef.json.tmp.12345");
        orphan << "half a";
    }

    // Restart over the same directory: the orphan is swept, the K
    // complete entries hit, the torn one re-executes, and the stitched
    // grid is byte-identical to the direct run.
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 1;
    serve::Server server(options, &store);
    server.start();

    SweepCapture capture = servedSweep(scratch.socket(), f5Request());
    ASSERT_TRUE(capture.done);
    EXPECT_EQ(capture.tally.runs, runs);
    EXPECT_EQ(capture.tally.storeHits, completed);
    EXPECT_EQ(capture.tally.simulated, runs - completed)
        << "exactly N-K re-executions after the crash";
    EXPECT_EQ(capture.tally.errors, 0u);
    EXPECT_EQ(capture.grid.toJson().dump(2), directGolden());

    server.stop();
    EXPECT_EQ(store.entries(), runs) << "the torn entry was replaced";
    EXPECT_FALSE(std::filesystem::exists(
        std::filesystem::path(scratch.store()) /
        "deadbeef.json.tmp.12345"))
        << "orphaned tmp files are swept on restart";
}

TEST(ServeDifferential, ClientDisconnectMidStreamLeavesServerHealthy)
{
    VerboseScope quiet(false);
    ScratchDir scratch("cpe_serve_diff_disconnect");
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 1;
    serve::Server server(options, &store);
    server.start();

    {
        // Fire a sweep and vanish without reading a byte: the server
        // must notice on a response write, cancel what it can, and
        // keep serving other clients.
        serve::Client impatient(scratch.socket());
        Json doc = f5Request().toJson();
        // Send the request line directly (sweep() would block reading).
        impatient.roundTripLine(doc.dump()); // reads just "accepted"
    }

    serve::Client fresh(scratch.socket());
    EXPECT_TRUE(fresh.ping()) << "server alive after a vanished client";
    SweepCapture capture = servedSweep(scratch.socket(), f5Request());
    ASSERT_TRUE(capture.done);
    EXPECT_EQ(capture.tally.errors, 0u);
    EXPECT_EQ(capture.grid.toJson().dump(2), directGolden())
        << "a half-abandoned request never corrupts later ones";

    server.stop();
}

TEST(ServeDifferential, CancelFlagShortCircuitsQueuedRuns)
{
    VerboseScope quiet(false);
    std::atomic<bool> cancel{false};
    sim::SweepRunner runner(1);
    runner.setCancelFlag(&cancel);

    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = "crc";

    // Not cancelled: the run executes normally.
    sim::RunOutcome live = runner.runOne(config);
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(live.attempts, 1u);

    // Cancelled: no simulate() call, a dedicated non-retryable kind.
    cancel.store(true);
    sim::RunOutcome dead = runner.runOne(config);
    EXPECT_FALSE(dead.ok());
    EXPECT_EQ(dead.errorKind, "cancelled");
    EXPECT_EQ(dead.attempts, 0u) << "cancellation precedes execution";
    EXPECT_FALSE(
        sim::SweepRunner::defaultRetryPolicy().retryable("cancelled"))
        << "a cancelled run must never be retried";
}

} // namespace
} // namespace cpe
