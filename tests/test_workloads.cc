/**
 * @file
 * Workload correctness tests: every kernel's architectural result is
 * checked against an independent C++ reimplementation fed the same
 * deterministic inputs.  These double as end-to-end validation of the
 * ISA, builder, and functional executor on real program shapes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "func/executor.hh"
#include "util/random.hh"
#include "workload/characterize.hh"
#include "workload/registry.hh"
#include "util/error.hh"

#include "expect_error.hh"

namespace cpe::workload {
namespace {

constexpr Addr ResultAddr = prog::layout::DataBase;

std::uint64_t
runAndReadResult(const std::string &name, const WorkloadOptions &options,
                 std::uint64_t *aux = nullptr)
{
    auto program = WorkloadRegistry::instance().build(name, options);
    func::Executor exec(program);
    exec.run();
    if (aux)
        *aux = exec.memory().read(ResultAddr + 8, 8);
    return exec.memory().read(ResultAddr, 8);
}

TEST(Workloads, RegistryContents)
{
    auto &registry = WorkloadRegistry::instance();
    auto infos = registry.list();
    EXPECT_GE(infos.size(), 10u);
    EXPECT_TRUE(registry.has("compress"));
    EXPECT_TRUE(registry.has("matmul"));
    EXPECT_FALSE(registry.has("nope"));
    for (const auto &info : infos) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_FALSE(info.category.empty()) << info.name;
    }
    for (const auto &name : WorkloadRegistry::evaluationSuite())
        EXPECT_TRUE(registry.has(name)) << name;
}

TEST(Workloads, CopyChecksum)
{
    const unsigned bytes = 8 * 1024;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<std::uint64_t> src(bytes / 8);
    for (auto &word : src)
        word = rng.next64();
    std::uint64_t expected = 0;
    for (unsigned i = src.size() - 64; i < src.size(); ++i)
        expected += src[i];

    EXPECT_EQ(runAndReadResult("copy", options), expected);
}

TEST(Workloads, PchaseEndsOnPredictedNode)
{
    const unsigned nodes = 2048, stride = 64, steps = 49152;
    WorkloadOptions options;

    std::vector<unsigned> perm(nodes);
    for (unsigned i = 0; i < nodes; ++i)
        perm[i] = i;
    Rng rng(options.seed);
    for (unsigned i = nodes - 1; i > 0; --i) {
        unsigned j = static_cast<unsigned>(rng.below(i));
        std::swap(perm[i], perm[j]);
    }
    // Replicate the ring walk.  The ring base is the first 64-aligned
    // address after the 16-byte result slot.
    Addr ring = ResultAddr + 64;
    unsigned node = 0;
    for (unsigned s = 0; s < steps; ++s)
        node = perm[node];
    Addr expected = ring + static_cast<Addr>(node) * stride;

    EXPECT_EQ(runAndReadResult("pchase", options), expected);
}

TEST(Workloads, HashjoinMatchCount)
{
    const unsigned build_n = 4096, probe_n = 3 * build_n;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<std::uint64_t> keys(build_n);
    std::unordered_map<std::uint64_t, std::uint64_t> index;
    for (unsigned i = 0; i < build_n; ++i) {
        keys[i] = rng.next64() | 1;
        index.emplace(keys[i], i);  // first insertion wins
    }
    std::uint64_t expected = 0;
    for (unsigned i = 0; i < probe_n; ++i) {
        std::uint64_t key = rng.chance(0.5)
            ? keys[rng.below(build_n)]
            : (rng.next64() | 1);
        auto it = index.find(key);
        if (it != index.end())
            expected += it->second + 1;
    }

    EXPECT_EQ(runAndReadResult("hashjoin", options), expected);
}

/** Reference LZW matching the kernel's dictionary policy. */
std::pair<std::uint64_t, std::uint64_t>
referenceCompress(const std::vector<std::uint8_t> &input,
                  unsigned max_codes)
{
    std::unordered_map<std::uint64_t, std::uint64_t> dict;
    std::uint64_t next_code = 256;
    std::uint64_t prefix = input[0];
    std::uint64_t emitted = 0;
    for (std::size_t i = 1; i < input.size(); ++i) {
        std::uint64_t key = ((prefix + 1) << 8) | input[i];
        auto it = dict.find(key);
        if (it != dict.end()) {
            prefix = it->second;
            continue;
        }
        ++emitted;
        if (next_code < max_codes)
            dict.emplace(key, next_code++);
        prefix = input[i];
    }
    ++emitted;  // final prefix
    return {emitted * 2, next_code};
}

TEST(Workloads, CompressOutputMatchesReferenceLzw)
{
    WorkloadOptions options;
    // Reproduce the generator (kernels_int.cc makeTextInput).
    const unsigned in_bytes = 20 * 1024;
    Rng rng(options.seed);
    std::vector<std::uint8_t> input;
    std::uint8_t last = 0;
    while (input.size() < in_bytes) {
        if (rng.chance(0.35) && !input.empty()) {
            input.push_back(last);
        } else {
            last = static_cast<std::uint8_t>(rng.below(24)) + 'a';
            input.push_back(last);
        }
    }
    auto [expected_bytes, expected_codes] =
        referenceCompress(input, 256 + 3072);

    std::uint64_t codes = 0;
    std::uint64_t out_bytes = runAndReadResult("compress", options, &codes);
    EXPECT_EQ(out_bytes, expected_bytes);
    EXPECT_EQ(codes, expected_codes);
    // Sanity: it actually compressed.
    EXPECT_LT(out_bytes, in_bytes);
}

TEST(Workloads, SortProducesSortedChecksum)
{
    const unsigned n = 4096;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<std::uint64_t> values(n);
    for (auto &value : values)
        value = rng.next64() >> 2;
    std::sort(values.begin(), values.end());
    std::uint64_t expected = 0;
    for (unsigned i = 0; i < n; ++i)
        expected += values[i] * (i + 1);

    EXPECT_EQ(runAndReadResult("sort", options), expected);
}

TEST(Workloads, SortedArrayInMemory)
{
    WorkloadOptions options;
    auto program = WorkloadRegistry::instance().build("sort", options);
    func::Executor exec(program);
    exec.run();
    // The array follows the result slot at the next 64-byte boundary.
    Addr array = ResultAddr + 64;
    std::uint64_t prev = 0;
    for (unsigned i = 0; i < 4096; ++i) {
        std::uint64_t value = exec.memory().read(array + 8ull * i, 8);
        EXPECT_GE(value, prev) << "unsorted at " << i;
        prev = value;
    }
}

TEST(Workloads, CrcMatchesReference)
{
    const unsigned in_bytes = 24 * 1024;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<std::uint8_t> input(in_bytes);
    for (unsigned off = 0; off < in_bytes; off += 8) {
        std::uint64_t word = rng.next64();
        std::memcpy(&input[off], &word, 8);
    }
    std::uint64_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
        table[i] = crc;
    }
    std::uint64_t crc = 0xFFFFFFFFull;
    for (std::uint8_t byte : input)
        crc = table[(crc ^ byte) & 0xff] ^ (crc >> 8);

    EXPECT_EQ(runAndReadResult("crc", options), crc);
}

TEST(Workloads, HistogramWeightedSum)
{
    const unsigned in_bytes = 24 * 1024;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::uint64_t hist[256] = {};
    for (unsigned i = 0; i < in_bytes; ++i)
        ++hist[static_cast<std::uint8_t>(rng.below(16) * rng.below(16))];
    std::uint64_t expected = 0;
    for (unsigned i = 0; i < 256; ++i)
        expected += hist[i] * i;

    EXPECT_EQ(runAndReadResult("histogram", options), expected);
}

TEST(Workloads, MatmulSumMatchesDouble)
{
    const unsigned n = 32;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<double> a(n * n), bm(n * n), c(n * n, 0.0);
    for (unsigned i = 0; i < n * n; ++i) {
        a[i] = rng.uniform();
        bm[i] = rng.uniform();
    }
    for (unsigned i = 0; i < n; ++i)
        for (unsigned k = 0; k < n; ++k) {
            double f0 = a[i * n + k];
            for (unsigned j = 0; j < n; ++j)
                c[i * n + j] += f0 * bm[k * n + j];
        }
    double sum = 0.0;
    for (unsigned i = 0; i < n * n; ++i)
        sum += c[i];

    std::uint64_t raw = runAndReadResult("matmul", options);
    double measured;
    std::memcpy(&measured, &raw, 8);
    EXPECT_DOUBLE_EQ(measured, sum);
}

TEST(Workloads, SaxpyFinalElement)
{
    const unsigned n = 512;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<double> x(n), y(n);
    for (unsigned i = 0; i < n; ++i) {
        x[i] = rng.uniform();
        y[i] = rng.uniform();
    }
    double z_last = 2.5 * x[n - 1] + y[n - 1];
    std::uint64_t expected;
    std::memcpy(&expected, &z_last, 8);

    EXPECT_EQ(runAndReadResult("saxpy", options), expected);
}

TEST(Workloads, StencilDiagonalSum)
{
    const unsigned n = 64, sweeps = 4;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<double> src(n * n), dst(n * n, 0.0);
    for (auto &value : src)
        value = rng.uniform();
    for (unsigned t = 0; t < sweeps; ++t) {
        for (unsigned i = 1; i < n - 1; ++i) {
            for (unsigned j = 1; j < n - 1; ++j) {
                double centre = src[i * n + j];
                double left = src[i * n + j - 1];
                double right = src[i * n + j + 1];
                double up = src[(i - 1) * n + j];
                double down = src[(i + 1) * n + j];
                // Exact association order of the unrolled kernel.
                double acc = centre + left;
                double rl = right + up;
                acc = acc + rl;
                acc = acc + down;
                dst[i * n + j] = acc * 0.2;
            }
        }
        std::swap(src, dst);
    }
    double sum = 0.0;
    for (unsigned i = 1; i < n - 1; ++i)
        sum += src[i * n + i];

    std::uint64_t raw = runAndReadResult("stencil", options);
    double measured;
    std::memcpy(&measured, &raw, 8);
    EXPECT_DOUBLE_EQ(measured, sum);
}

// --- OS-activity model ------------------------------------------------

TEST(Workloads, OsLevelsAddKernelWork)
{
    for (const std::string name : {"copy", "matmul", "compress"}) {
        WorkloadOptions user, os;
        os.osLevel = 2;
        auto user_prog = WorkloadRegistry::instance().build(name, user);
        auto os_prog = WorkloadRegistry::instance().build(name, os);
        auto user_mix = characterize(user_prog);
        auto os_mix = characterize(os_prog);
        EXPECT_EQ(user_mix.kernelInsts, 0u) << name;
        EXPECT_GT(os_mix.kernelInsts, 0u) << name;
        EXPECT_GT(os_mix.insts, user_mix.insts) << name;
    }
}

TEST(Workloads, OsActivityPreservesResults)
{
    // The kernel handler must not corrupt user state: results are
    // identical with and without OS activity.
    for (const std::string name :
         {"copy", "sort", "crc", "histogram", "hashjoin", "compress"}) {
        WorkloadOptions user, os;
        os.osLevel = 2;
        EXPECT_EQ(runAndReadResult(name, user), runAndReadResult(name, os))
            << name << " result corrupted by OS activity";
    }
}

TEST(Workloads, SeedChangesData)
{
    WorkloadOptions a, b;
    b.seed = 777;
    EXPECT_NE(runAndReadResult("copy", a), runAndReadResult("copy", b));
}

TEST(Workloads, CharacterizationSanity)
{
    WorkloadOptions options;
    auto program = WorkloadRegistry::instance().build("matmul", options);
    auto mix = characterize(program);
    EXPECT_GT(mix.insts, 100'000u);
    EXPECT_GT(mix.loadFrac(), 0.2);
    EXPECT_GT(mix.storeFrac(), 0.05);
    EXPECT_GT(mix.fpFrac(), 0.15);
    EXPECT_GT(mix.branchFrac(), 0.01);
    EXPECT_DOUBLE_EQ(mix.kernelFrac(), 0.0);
    EXPECT_EQ(mix.avgLoadBytes(), 8.0);
    // matmul touches 3 x 8 KiB matrices (plus stack/result slack).
    EXPECT_GT(mix.workingSetKiB(), 20.0);
    EXPECT_LT(mix.workingSetKiB(), 40.0);

    auto crc_mix = characterize(
        WorkloadRegistry::instance().build("crc", options));
    EXPECT_LT(crc_mix.avgLoadBytes(), 8.0);  // byte loads dominate
}

TEST(Workloads, SpmvMatchesReference)
{
    const unsigned rows = 2048, cols = 4096;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<std::uint64_t> row_ptr(rows + 1, 0);
    std::vector<std::uint64_t> col_idx;
    std::vector<double> values;
    for (unsigned i = 0; i < rows; ++i) {
        unsigned nnz = 4 + static_cast<unsigned>(rng.below(8));
        for (unsigned k = 0; k < nnz; ++k) {
            col_idx.push_back(rng.below(cols));
            values.push_back(rng.uniform());
        }
        row_ptr[i + 1] = col_idx.size();
    }
    std::vector<double> x(cols);
    for (auto &value : x)
        value = rng.uniform();

    double sum = 0.0;
    for (unsigned i = 0; i < rows; ++i) {
        double acc = 0.0;
        for (std::uint64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
            acc += values[k] * x[col_idx[k]];
        sum += acc;
    }

    std::uint64_t raw = runAndReadResult("spmv", options);
    double measured;
    std::memcpy(&measured, &raw, 8);
    EXPECT_DOUBLE_EQ(measured, sum);
}

TEST(Workloads, FftMatchesReference)
{
    const unsigned n = 256, rounds = 6;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<double> re(n), im(n);
    for (unsigned i = 0; i < n; ++i) {
        re[i] = 2.0 * rng.uniform() - 1.0;
        im[i] = 2.0 * rng.uniform() - 1.0;
    }
    std::vector<double> wre(n / 2), wim(n / 2);
    for (unsigned k = 0; k < n / 2; ++k) {
        double angle = -2.0 * 3.14159265358979323846 * k / n;
        wre[k] = std::cos(angle);
        wim[k] = std::sin(angle);
    }
    unsigned log2n = 0;
    while ((1u << log2n) < n)
        ++log2n;
    std::vector<unsigned> rev(n);
    for (unsigned i = 0; i < n; ++i) {
        unsigned r = 0;
        for (unsigned bit = 0; bit < log2n; ++bit)
            r |= ((i >> bit) & 1) << (log2n - 1 - bit);
        rev[i] = r;
    }

    for (unsigned round = 0; round < rounds; ++round) {
        for (unsigned i = 0; i < n; ++i) {
            if (i < rev[i]) {
                std::swap(re[i], re[rev[i]]);
                std::swap(im[i], im[rev[i]]);
            }
        }
        for (unsigned len = 2; len <= n; len <<= 1) {
            unsigned half = len / 2, stride = n / len;
            for (unsigned start = 0; start < n; start += len) {
                for (unsigned j = 0; j < half; ++j) {
                    unsigned a = start + j, c = a + half;
                    double vr = re[c] * wre[j * stride] -
                                im[c] * wim[j * stride];
                    double vi = re[c] * wim[j * stride] +
                                im[c] * wre[j * stride];
                    double ur = re[a], ui = im[a];
                    re[a] = ur + vr;
                    im[a] = ui + vi;
                    re[c] = ur - vr;
                    im[c] = ui - vi;
                }
            }
        }
    }
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        sum += re[i];
        sum += im[i];
    }

    std::uint64_t raw = runAndReadResult("fft", options);
    double measured;
    std::memcpy(&measured, &raw, 8);
    EXPECT_DOUBLE_EQ(measured, sum);
}

TEST(Workloads, BsearchSumOfFoundIndices)
{
    const unsigned n = 65536, lookups = 12288;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::vector<std::uint64_t> values(n);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < n; ++i) {
        value += 1 + rng.below(64);
        values[i] = value;
    }
    std::uint64_t expected = 0;
    for (unsigned i = 0; i < lookups; ++i) {
        std::uint64_t key = rng.chance(0.5)
            ? values[rng.below(n)]
            : values[rng.below(n - 1)] + 1;
        // Binary search matching the kernel (first hit by midpoint
        // bisection; values are strictly increasing so unique).
        std::uint64_t lo = 0, hi = n;
        while (lo < hi) {
            std::uint64_t mid = (lo + hi) / 2;
            if (values[mid] == key) {
                expected += mid + 1;
                break;
            }
            if (values[mid] < key)
                lo = mid + 1;
            else
                hi = mid;
        }
    }
    EXPECT_EQ(runAndReadResult("bsearch", options), expected);
}

TEST(Workloads, StropsLengthsAndCompares)
{
    const unsigned strings = 192, slot = 96;
    WorkloadOptions options;
    Rng rng(options.seed);
    std::uint64_t total_length = 0;
    for (unsigned i = 0; i < strings; ++i) {
        unsigned length = 8 + static_cast<unsigned>(rng.below(slot - 9));
        for (unsigned c = 0; c < length; ++c)
            rng.below(26);  // burn the same RNG draws
        total_length += length;
    }
    std::uint64_t compares = 0;
    std::uint64_t measured = runAndReadResult("strops", options,
                                              &compares);
    EXPECT_EQ(measured, total_length);
    EXPECT_EQ(compares, strings);  // every copy compares equal
}

TEST(Workloads, EveryKernelIsBinaryEncodable)
{
    // The whole suite must respect the ISA's immediate ranges: encode
    // every instruction of every workload at every OS level and decode
    // it back.
    auto &registry = WorkloadRegistry::instance();
    for (const auto &info : registry.list()) {
        for (unsigned os : {0u, 1u, 2u}) {
            WorkloadOptions options;
            options.osLevel = os;
            auto program = registry.build(info.name, options);
            auto words = program.encodedText();  // panics if unencodable
            ASSERT_EQ(words.size(), program.size()) << info.name;
        }
    }
}

TEST(WorkloadsErrors, UnknownWorkloadThrowsWorkloadError)
{
    WorkloadOptions options;
    CPE_EXPECT_THROW_MSG(
        WorkloadRegistry::instance().build("no-such-kernel", options),
        WorkloadError, "unknown workload");
}

} // namespace
} // namespace cpe::workload
