/**
 * @file
 * Test helper for the SimError contracts (util/error.hh): assert that
 * a statement throws a specific error type whose message contains a
 * substring — the structured replacement for the EXPECT_DEATH checks
 * that covered the old fatal() call sites.
 */

#ifndef CPE_TESTS_EXPECT_ERROR_HH
#define CPE_TESTS_EXPECT_ERROR_HH

#include <string>

#include <gtest/gtest.h>

/**
 * Expect @p stmt to throw @p ExceptionType with @p substr somewhere in
 * its what().  A different exception type propagates and fails the
 * test with gtest's usual unhandled-exception report.
 */
#define CPE_EXPECT_THROW_MSG(stmt, ExceptionType, substr)               \
    do {                                                                \
        bool cpe_threw_ = false;                                        \
        try {                                                           \
            stmt;                                                       \
        } catch (const ExceptionType &cpe_error_) {                     \
            cpe_threw_ = true;                                          \
            EXPECT_NE(std::string(cpe_error_.what()).find(substr),      \
                      std::string::npos)                                \
                << "message was: " << cpe_error_.what();                \
        }                                                               \
        EXPECT_TRUE(cpe_threw_)                                         \
            << #stmt " did not throw " #ExceptionType;                  \
    } while (0)

#endif // CPE_TESTS_EXPECT_ERROR_HH
