/**
 * @file
 * The crash-safe resume journal: full-fidelity SimResult round trips,
 * durable append + reload, torn-trailing-line tolerance, and the
 * kill-and-resume contract — a sweep resumed from a journal holding K
 * of N completed runs re-executes exactly N-K and stitches a grid
 * byte-identical to an uninterrupted one.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/config_file.hh"
#include "sim/report.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace cpe {
namespace {

/** A scratch journal path, removed on scope exit. */
struct ScratchJournal
{
    std::filesystem::path path;

    explicit ScratchJournal(const std::string &name)
        : path(std::filesystem::temp_directory_path() / name)
    {
        std::filesystem::remove(path);
    }
    ~ScratchJournal()
    {
        sim::RunJournal::setActive(nullptr);
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
};

sim::SimConfig
journalConfig(const std::string &workload, bool dual = false)
{
    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        dual ? core::PortTechConfig::dualPortBase()
             : core::PortTechConfig::singlePortAllTechniques();
    config.label = dual ? "dual" : "techniques";
    return config;
}

TEST(ResumeJournal, ResultJsonRoundTripsByteExactly)
{
    sim::SimResult result = sim::simulate(journalConfig("crc"));
    Json doc = sim::resultToJson(result);
    sim::SimResult back = sim::resultFromJson(
        Json::parse(doc.dump(), "round trip"));
    // The serialization uses shortest-round-trip doubles, so one more
    // trip through JSON must reproduce the exact same bytes.
    EXPECT_EQ(sim::resultToJson(back).dump(), doc.dump());
    EXPECT_EQ(back.workload, result.workload);
    EXPECT_EQ(back.configTag, result.configTag);
    EXPECT_EQ(back.cycles, result.cycles);
    EXPECT_EQ(back.ipc, result.ipc);
    EXPECT_EQ(back.statsJson, result.statsJson);
    EXPECT_EQ(back.statsDump, result.statsDump);
}

TEST(ResumeJournal, KeyTracksEveryConfigKnob)
{
    sim::SimConfig config = journalConfig("crc");
    std::string key = sim::RunJournal::keyFor(config);
    EXPECT_EQ(key, sim::RunJournal::keyFor(config)) << "stable";

    sim::SimConfig other = journalConfig("crc");
    other.core.dcache.tech.storeBufferEntries += 1;
    EXPECT_NE(sim::RunJournal::keyFor(other), key);

    sim::SimConfig scaled = journalConfig("crc");
    scaled.workload.scale = 2;
    EXPECT_NE(sim::RunJournal::keyFor(scaled), key);

    // A disarmed chaos spec must not leak into the key: pre-chaos
    // journals keep resolving.
    sim::SimConfig with_chaos = journalConfig("crc");
    EXPECT_EQ(sim::RunJournal::keyFor(with_chaos), key);
    EXPECT_EQ(sim::toMachineFile(with_chaos).find("[chaos]"),
              std::string::npos);
    with_chaos.chaos = util::ChaosSpec::parse("seed=1,rate=0.5");
    EXPECT_NE(sim::RunJournal::keyFor(with_chaos), key);
}

TEST(ResumeJournal, KeyIsIndependentOfMachineFileFormatting)
{
    // Journal keys hash the *canonical* machine-file text — a parse +
    // re-serialize round trip — so a config loaded from a hand-edited
    // machine file (reordered sections, comments, loose whitespace)
    // resolves the same journal entries as the pristine rendering.
    sim::SimConfig config = journalConfig("crc");
    std::string pristine = sim::toMachineFile(config);

    // toMachineFile output must be a fixed point of canonicalization,
    // or every pre-existing journal key would silently change.
    EXPECT_EQ(sim::canonicalMachineFile(pristine), pristine);

    // Scruff up the rendering without changing its meaning: comments,
    // blank lines, and trailing horizontal whitespace on every line.
    std::string scruffy = "# hand-edited copy\n\n";
    for (char c : pristine) {
        scruffy += c;
        if (c == '\n')
            scruffy += " \t\n";
    }
    ASSERT_NE(scruffy, pristine);
    sim::ConfigParseResult reparsed = sim::parseConfig(scruffy);
    ASSERT_TRUE(reparsed.ok) << reparsed.error;
    EXPECT_EQ(sim::RunJournal::keyFor(reparsed.config),
              sim::RunJournal::keyFor(config));

    // A real change still moves the key.
    sim::SimConfig changed = journalConfig("crc");
    changed.workload.seed += 1;
    EXPECT_NE(sim::RunJournal::keyFor(changed),
              sim::RunJournal::keyFor(config));
}

TEST(ResumeJournal, RecordPersistsAcrossReopen)
{
    VerboseScope quiet(false);
    ScratchJournal scratch("cpe_resume_persist.jsonl");
    sim::SimConfig config = journalConfig("crc");
    sim::SimResult result = sim::simulate(config);
    std::string key = sim::RunJournal::keyFor(config);
    {
        sim::RunJournal journal(scratch.path.string());
        EXPECT_EQ(journal.entries(), 0u);
        journal.record(key, result);
        EXPECT_EQ(journal.entries(), 1u);
    }
    sim::RunJournal reopened(scratch.path.string());
    EXPECT_EQ(reopened.entries(), 1u);
    sim::SimResult loaded;
    ASSERT_TRUE(reopened.lookup(key, loaded));
    EXPECT_EQ(sim::resultToJson(loaded).dump(),
              sim::resultToJson(result).dump());
    EXPECT_FALSE(reopened.lookup("no-such-key", loaded));
}

TEST(ResumeJournal, TornTrailingLineIsDiscarded)
{
    VerboseScope quiet(false);
    ScratchJournal scratch("cpe_resume_torn.jsonl");
    sim::SimConfig config = journalConfig("crc");
    sim::SimResult result = sim::simulate(config);
    std::string key = sim::RunJournal::keyFor(config);
    {
        sim::RunJournal journal(scratch.path.string());
        journal.record(key, result);
    }
    // A crash mid-append leaves a partial line with no newline.
    {
        std::ofstream torn(scratch.path, std::ios::app);
        torn << "{\"t\":\"run\",\"k\":\"feedface\",\"work";
    }
    sim::RunJournal journal(scratch.path.string());
    EXPECT_EQ(journal.entries(), 1u);
    sim::SimResult loaded;
    EXPECT_TRUE(journal.lookup(key, loaded));
    EXPECT_FALSE(journal.lookup("feedface", loaded));

    // Appending after the torn line still yields a loadable journal:
    // record() starts every record on a fresh line.
    sim::SimConfig other = journalConfig("copy");
    journal.record(sim::RunJournal::keyFor(other), sim::simulate(other));
    sim::RunJournal reopened(scratch.path.string());
    EXPECT_EQ(reopened.entries(), 2u);
}

TEST(ResumeJournal, KillAndResumeStitchesByteIdenticalGrid)
{
    VerboseScope quiet(false);
    // Golden: the uninterrupted 2x2 grid, no journal anywhere near it.
    std::vector<sim::SimConfig> configs;
    for (const char *workload : {"crc", "copy"})
        for (bool dual : {false, true})
            configs.push_back(journalConfig(workload, dual));
    std::string golden =
        sim::SweepRunner(1).runGrid(configs).toJson().dump(2);

    // "Crash" after K=2 of N=4 runs: journal only the first two, then
    // tear the file the way an interrupted append would.
    ScratchJournal scratch("cpe_resume_kill.jsonl");
    {
        sim::RunJournal journal(scratch.path.string());
        for (std::size_t i = 0; i < 2; ++i)
            journal.record(sim::RunJournal::keyFor(configs[i]),
                           sim::simulate(configs[i]));
    }
    {
        std::ofstream torn(scratch.path, std::ios::app);
        torn << "{\"t\":\"run\",\"k\":\"0123\"";
    }

    // Resume: the journaled pair must come back without re-execution,
    // the other pair must run, and the stitched grid must match the
    // golden byte for byte.
    sim::RunJournal journal(scratch.path.string());
    EXPECT_EQ(journal.entries(), 2u);
    sim::RunJournal::setActive(&journal);
    auto outcomes = sim::SweepRunner(1).runOutcomes(configs);
    sim::RunJournal::setActive(nullptr);

    ASSERT_EQ(outcomes.size(), 4u);
    unsigned resumed = 0;
    unsigned executed = 0;
    sim::ResultGrid grid("IPC");
    for (const auto &outcome : outcomes) {
        ASSERT_TRUE(outcome.ok());
        if (outcome.resumed) {
            ++resumed;
            EXPECT_EQ(outcome.attempts, 0u)
                << "a resumed run never calls simulate()";
        } else {
            ++executed;
        }
        grid.add(outcome.result);
    }
    EXPECT_EQ(resumed, 2u);
    EXPECT_EQ(executed, 2u) << "exactly N-K re-executions";
    EXPECT_EQ(grid.toJson().dump(2), golden);

    // The re-executed runs were journaled in turn: a second resume
    // re-executes nothing.
    EXPECT_EQ(journal.entries(), 4u);
    unsigned executed_again = 0;
    sim::RunJournal::setActive(&journal);
    auto again = sim::SweepRunner(1).runOutcomes(configs);
    sim::RunJournal::setActive(nullptr);
    for (const auto &outcome : again)
        executed_again += outcome.resumed ? 0 : 1;
    EXPECT_EQ(executed_again, 0u);
}

TEST(ResumeJournal, AppendFailureWarnsButRunSucceeds)
{
    VerboseScope quiet(false);
    ScratchJournal scratch("cpe_resume_appendfail.jsonl");
    sim::RunJournal journal(scratch.path.string());
    sim::RunJournal::setActive(&journal);
    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=1,rate=1,point=journal.append"));
    auto outcomes =
        sim::SweepRunner(1).runOutcomes({journalConfig("crc")});
    util::FaultInjector::instance().disarm();
    sim::RunJournal::setActive(nullptr);

    // Losing the journal line costs a future re-execution, never the
    // run: the outcome is still a success, the journal still empty.
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_EQ(journal.entries(), 0u);
    sim::RunJournal reopened(scratch.path.string());
    EXPECT_EQ(reopened.entries(), 0u);
}

TEST(ResumeJournal, UnopenablePathIsStructuredIoError)
{
    EXPECT_THROW(sim::RunJournal("/no/such/dir/journal.jsonl"), IoError);
}

} // namespace
} // namespace cpe
