/**
 * @file
 * Trace-file tests: write/read round trip, field fidelity, and —
 * the strong property — cycle-exact equivalence between a timing run
 * driven live by the executor and one replayed from the file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "cpu/ooo_core.hh"
#include "func/executor.hh"
#include "func/trace_file.hh"
#include "workload/registry.hh"
#include "util/error.hh"

#include "expect_error.hh"

namespace cpe::func {
namespace {

/** Temp path helper; removed in the destructor. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

prog::Program
sampleProgram()
{
    workload::WorkloadOptions options;
    options.osLevel = 1;  // include kernel-mode records
    return workload::WorkloadRegistry::instance().build("histogram",
                                                        options);
}

TEST(TraceFile, RoundTripsEveryField)
{
    TempFile file("cpe_roundtrip.trace");
    prog::Program program = sampleProgram();

    Executor writer_exec(program);
    std::uint64_t written = writeTrace(writer_exec, file.path, 5000);
    ASSERT_EQ(written, 5000u);

    Executor golden(program);
    auto expected = recordTrace(golden, 5000);

    FileTraceSource reader(file.path);
    EXPECT_EQ(reader.recordCount(), 5000u);
    DynInst inst;
    for (const auto &want : expected) {
        ASSERT_TRUE(reader.next(inst));
        EXPECT_EQ(inst.seq, want.seq);
        EXPECT_EQ(inst.pc, want.pc);
        EXPECT_EQ(inst.inst, want.inst);
        EXPECT_EQ(inst.cls, want.cls);
        EXPECT_EQ(inst.memAddr, want.memAddr);
        EXPECT_EQ(inst.memSize, want.memSize);
        EXPECT_EQ(inst.nextPc, want.nextPc);
        EXPECT_EQ(inst.taken, want.taken);
        EXPECT_EQ(inst.kernelMode, want.kernelMode);
    }
    EXPECT_FALSE(reader.next(inst));
}

TEST(TraceFile, WholeProgramCapture)
{
    TempFile file("cpe_whole.trace");
    prog::Program program = sampleProgram();
    Executor exec(program);
    std::uint64_t written = writeTrace(exec, file.path);

    Executor counter(program);
    EXPECT_EQ(written, counter.run());
}

TEST(TraceFile, ReplayedTimingRunIsCycleExact)
{
    TempFile file("cpe_replay.trace");
    prog::Program program = sampleProgram();
    Executor writer_exec(program);
    writeTrace(writer_exec, file.path);

    auto run = [&](TraceSource &source) {
        cpu::CoreParams params;
        params.dcache.tech =
            core::PortTechConfig::singlePortAllTechniques();
        mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
        cpu::OooCore core(params, &source, &hierarchy);
        Cycle cycles = core.run();
        return std::make_pair(cycles, core.committedInsts());
    };

    Executor live(program);
    auto from_live = run(live);
    FileTraceSource replay(file.path);
    auto from_file = run(replay);

    EXPECT_EQ(from_live.first, from_file.first)
        << "trace replay must be cycle-exact";
    EXPECT_EQ(from_live.second, from_file.second);
}

TEST(TraceFile, MissingFileThrowsIoError)
{
    CPE_EXPECT_THROW_MSG(FileTraceSource("/nonexistent/trace.bin"),
                         IoError, "cannot open");
}

TEST(TraceFile, UnwritablePathThrowsIoError)
{
    prog::Program program = sampleProgram();
    Executor exec(program);
    CPE_EXPECT_THROW_MSG(
        writeTrace(exec, "/nonexistent-dir/trace.cpet", 10), IoError,
        "cannot create");
}

TEST(TraceFile, ReadTraceMatchesStreamingReader)
{
    TempFile file("cpe_readtrace.trace");
    prog::Program program = sampleProgram();
    Executor exec(program);
    writeTrace(exec, file.path, 2000);

    std::vector<DynInst> whole = readTrace(file.path);
    ASSERT_EQ(whole.size(), 2000u);
    FileTraceSource reader(file.path);
    DynInst inst;
    for (const auto &want : whole) {
        ASSERT_TRUE(reader.next(inst));
        EXPECT_EQ(inst.seq, want.seq);
        EXPECT_EQ(inst.pc, want.pc);
    }
}

TEST(TraceFile, TruncatedFileThrowsIoError)
{
    TempFile file("cpe_truncated.trace");
    prog::Program program = sampleProgram();
    Executor exec(program);
    writeTrace(exec, file.path, 100);

    // Chop the last record in half: the header still promises 100.
    auto size = std::filesystem::file_size(file.path);
    std::filesystem::resize_file(file.path, size - 20);
    CPE_EXPECT_THROW_MSG(readTrace(file.path), IoError, "truncated");
}

TEST(TraceFile, RejectsGarbage)
{
    TempFile file("cpe_garbage.trace");
    std::FILE *f = std::fopen(file.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    CPE_EXPECT_THROW_MSG(FileTraceSource{file.path}, IoError,
                         "not a CPET trace");
}

} // namespace
} // namespace cpe::func
