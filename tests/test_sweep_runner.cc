/**
 * @file
 * sim::SweepRunner tests: the determinism contract.  A parallel sweep
 * must produce results bit-identical to the serial path — same IPC
 * doubles, same cycle counts, same stats dump text — and hand them
 * back in submission order, so every ResultGrid table renders
 * byte-identically whatever the job count.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/logging.hh"

namespace cpe::sim {
namespace {

/** The 4-workload x 3-variant grid the determinism tests sweep. */
std::vector<SimConfig>
testGrid()
{
    const std::vector<std::string> workloads = {"crc", "histogram",
                                                "saxpy", "strops"};
    const std::vector<core::PortTechConfig> variants = {
        core::PortTechConfig::singlePortBase(),
        core::PortTechConfig::singlePortAllTechniques(),
        core::PortTechConfig::dualPortBase()};
    std::vector<SimConfig> configs;
    for (const auto &workload : workloads) {
        for (const auto &tech : variants) {
            SimConfig config = SimConfig::defaults();
            config.workloadName = workload;
            config.core.dcache.tech = tech;
            configs.push_back(std::move(config));
        }
    }
    return configs;
}

TEST(SweepRunner, ParallelGridIsBitIdenticalToSerial)
{
    VerboseScope quiet(false);
    auto configs = testGrid();

    SweepRunner serial(1);
    SweepRunner parallel(4);
    auto expected = serial.run(configs);
    auto actual = parallel.run(configs);

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        SCOPED_TRACE(expected[i].workload + " / " +
                     expected[i].configTag);
        // Exact equality on doubles is deliberate: each run owns its
        // machine and RNGs, so the arithmetic must be identical.
        EXPECT_EQ(actual[i].workload, expected[i].workload);
        EXPECT_EQ(actual[i].configTag, expected[i].configTag);
        EXPECT_EQ(actual[i].cycles, expected[i].cycles);
        EXPECT_EQ(actual[i].insts, expected[i].insts);
        EXPECT_EQ(actual[i].ipc, expected[i].ipc);
        EXPECT_EQ(actual[i].portUtilization,
                  expected[i].portUtilization);
        EXPECT_EQ(actual[i].l1dMissRate, expected[i].l1dMissRate);
        EXPECT_EQ(actual[i].statsDump, expected[i].statsDump);
    }
}

TEST(SweepRunner, ParallelTablesRenderByteIdenticalToSerial)
{
    VerboseScope quiet(false);
    auto configs = testGrid();

    auto serialGrid = SweepRunner(1).runGrid(configs);
    auto parallelGrid = SweepRunner(4).runGrid(configs);

    EXPECT_EQ(parallelGrid.workloads(), serialGrid.workloads());
    EXPECT_EQ(parallelGrid.configs(), serialGrid.configs());
    EXPECT_EQ(parallelGrid.ipcTable().render(),
              serialGrid.ipcTable().render());
    EXPECT_EQ(parallelGrid.relativeTable(serialGrid.configs().front())
                  .render(),
              serialGrid.relativeTable(serialGrid.configs().front())
                  .render());
}

TEST(SweepRunner, ResultsArriveInSubmissionOrder)
{
    VerboseScope quiet(false);
    auto configs = testGrid();
    auto results = SweepRunner(8).run(configs);
    ASSERT_EQ(results.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(results[i].workload, configs[i].workloadName);
        EXPECT_EQ(results[i].configTag, configs[i].tag());
    }
}

TEST(SweepRunner, EmptySweepIsFine)
{
    EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

TEST(SweepRunner, SingleConfigRunsInline)
{
    VerboseScope quiet(false);
    SimConfig config = SimConfig::defaults();
    config.workloadName = "crc";
    auto results = SweepRunner(8).run({config});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].insts, 0u);
}

TEST(SweepRunner, JobsResolveFromConstructorEnvAndOverride)
{
    SweepRunner explicitJobs(3);
    EXPECT_EQ(explicitJobs.jobs(), 3u);

    SweepRunner::setDefaultJobs(5);
    EXPECT_EQ(SweepRunner::defaultJobs(), 5u);
    EXPECT_EQ(SweepRunner(0).jobs(), 5u);
    SweepRunner::setDefaultJobs(0);

    ASSERT_EQ(setenv("CPESIM_JOBS", "7", 1), 0);
    EXPECT_EQ(SweepRunner::defaultJobs(), 7u);
    ASSERT_EQ(unsetenv("CPESIM_JOBS"), 0);
    EXPECT_GE(SweepRunner::defaultJobs(), 1u);
}

} // namespace
} // namespace cpe::sim
