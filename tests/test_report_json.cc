/**
 * @file
 * JSON pipeline tests: the Json document model (stable key order,
 * escaping, round-tripping, parse errors), ResultGrid::toJson, the
 * StatGroup JSON dump, and the SimError contracts of geomeanIpc /
 * relativeTable on bad baselines.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "sim/report.hh"
#include "stats/stats.hh"
#include "util/json.hh"
#include "util/error.hh"

#include "expect_error.hh"

namespace cpe {
namespace {

TEST(Json, TypesAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_DOUBLE_EQ(Json(2.5).asNumber(), 2.5);
    EXPECT_EQ(Json("hi").asString(), "hi");

    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    EXPECT_EQ(arr.items().size(), 2u);

    Json obj = Json::object();
    obj["a"] = 1;
    EXPECT_TRUE(obj.find("a"));
    EXPECT_FALSE(obj.find("b"));
}

TEST(Json, DumpStableKeyOrder)
{
    // Keys render in insertion order, not sorted — the property the
    // committed baselines' diffs rely on.
    Json obj = Json::object();
    obj["zebra"] = 1;
    obj["alpha"] = 2;
    obj["mid"] = Json::object();
    obj["mid"]["z"] = 1;
    obj["mid"]["a"] = 2;
    EXPECT_EQ(obj.dump(),
              "{\"zebra\":1,\"alpha\":2,\"mid\":{\"z\":1,\"a\":2}}");
}

TEST(Json, DumpNumbers)
{
    EXPECT_EQ(Json(3).dump(), "3");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
    EXPECT_EQ(Json(0.5).dump(), "0.5");
    // Non-finite values have no JSON spelling; they degrade to null.
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, DumpEscaping)
{
    Json obj = Json::object();
    obj["k\"ey"] = "line\nbreak\ttab \\ \x01";
    EXPECT_EQ(obj.dump(),
              "{\"k\\\"ey\":\"line\\nbreak\\ttab \\\\ \\u0001\"}");
}

TEST(Json, PrettyPrint)
{
    Json obj = Json::object();
    obj["a"] = Json::array();
    obj["a"].push(1);
    EXPECT_EQ(obj.dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(Json, RoundTrip)
{
    Json doc = Json::object();
    doc["name"] = "F5 \u00e9";
    doc["ok"] = true;
    doc["nothing"] = Json();
    doc["ipc"] = 1.2345678901234567;
    doc["list"] = Json::array();
    doc["list"].push(-1);
    doc["list"].push(Json::object());

    Json parsed = Json::parse(doc.dump(2), "round-trip");
    EXPECT_EQ(parsed.dump(2), doc.dump(2));
    // Shortest-round-trip doubles: the value survives exactly.
    EXPECT_DOUBLE_EQ(parsed.at("ipc").asNumber(), 1.2345678901234567);
}

TEST(Json, ParseErrorsCarryPosition)
{
    Json out;
    std::string error;
    EXPECT_FALSE(Json::tryParse("{\"a\": }", out, error));
    EXPECT_NE(error.find("column"), std::string::npos);
    EXPECT_FALSE(Json::tryParse("{\"a\": 1,\n  bad}", out, error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
    EXPECT_FALSE(Json::tryParse("[1, 2", out, error));
    EXPECT_FALSE(Json::tryParse("", out, error));
    EXPECT_FALSE(Json::tryParse("1 trailing", out, error));
}

TEST(JsonErrors, UserFacingLookupsThrowIoError)
{
    Json obj = Json::object();
    obj["present"] = 1;
    CPE_EXPECT_THROW_MSG(obj.at("absent", "test doc"), IoError,
                         "absent");
    CPE_EXPECT_THROW_MSG(Json::parse("{oops", "test doc"), IoError,
                         "test doc");
}

sim::ResultGrid
smallGrid()
{
    sim::ResultGrid grid("IPC");
    sim::SimResult a;
    a.workload = "w1";
    a.configTag = "base";
    a.ipc = 1.0;
    a.cycles = 100;
    a.insts = 100;
    sim::SimResult b = a;
    b.configTag = "fast";
    b.ipc = 2.0;
    sim::SimResult c = a;
    c.workload = "w2";
    c.ipc = 4.0;
    sim::SimResult d = c;
    d.configTag = "fast";
    d.ipc = 2.0;
    grid.add(a);
    grid.add(b);
    grid.add(c);
    grid.add(d);
    return grid;
}

TEST(ResultGridJson, StructureAndValues)
{
    Json doc = smallGrid().toJson("base");

    EXPECT_EQ(doc.at("value").asString(), "IPC");
    EXPECT_EQ(doc.at("workloads").items().size(), 2u);
    EXPECT_EQ(doc.at("configs").items().size(), 2u);
    EXPECT_DOUBLE_EQ(
        doc.at("ipc").at("w1").at("fast").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(doc.at("geomean_ipc").at("base").asNumber(),
                     2.0); // sqrt(1 * 4)
    EXPECT_EQ(doc.at("baseline").asString(), "base");
    EXPECT_DOUBLE_EQ(
        doc.at("relative_geomean").at("fast").asNumber(), 1.0);
    EXPECT_EQ(doc.at("runs").items().size(), 4u);
    const Json &run = doc.at("runs").items()[0];
    EXPECT_EQ(run.at("workload").asString(), "w1");
    EXPECT_EQ(run.at("config").asString(), "base");
    EXPECT_DOUBLE_EQ(run.at("cycles").asNumber(), 100.0);

    // Without a baseline the relative block is absent.
    Json bare = smallGrid().toJson();
    EXPECT_FALSE(bare.find("baseline"));
    EXPECT_FALSE(bare.find("relative_geomean"));

    // Serialization is deterministic.
    EXPECT_EQ(doc.dump(2), smallGrid().toJson("base").dump(2));
}

TEST(ResultGridJsonErrors, BadBaselinesThrowSimError)
{
    auto grid = smallGrid();
    CPE_EXPECT_THROW_MSG(grid.geomeanIpc("nope"), SimError,
                         "no config column");
    CPE_EXPECT_THROW_MSG(grid.relativeTable("nope"), SimError,
                         "baseline");
    CPE_EXPECT_THROW_MSG(grid.toJson("nope"), SimError,
                         "no config column");

    sim::ResultGrid zero("IPC");
    sim::SimResult r;
    r.workload = "w";
    r.configTag = "dead";
    r.ipc = 0.0;
    zero.add(r);
    CPE_EXPECT_THROW_MSG(zero.geomeanIpc("dead"), SimError,
                         "non-positive");
    CPE_EXPECT_THROW_MSG(zero.relativeTable("dead"), SimError,
                         "non-positive");
}

TEST(StatGroupJson, DumpJsonRoundTrips)
{
    stats::StatGroup group("core");
    stats::Scalar hits;
    stats::Average lat;
    stats::Distribution occupancy;
    occupancy.init(0, 8, 2);
    group.addScalar("hits", &hits, "cache hits");
    group.addAverage("lat", &lat, "load latency");
    group.addDistribution("occ", &occupancy, "buffer occupancy");

    stats::StatGroup child("sub");
    stats::Scalar misses;
    child.addScalar("misses", &misses, "cache misses");
    group.addChild(&child);

    hits += 41;
    ++hits;
    lat.sample(2.0);
    lat.sample(4.0);
    occupancy.sample(1);
    occupancy.sample(9);
    misses += 7;

    Json doc = Json::parse(group.dumpJson(), "stat dump");
    const Json &core = doc.at("core");
    EXPECT_DOUBLE_EQ(core.at("hits").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(core.at("lat").asNumber(), 3.0);
    EXPECT_EQ(core.at("occ").at("samples").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(core.at("sub").at("misses").asNumber(), 7.0);

    // toJson's key order follows registration order, so the dump is
    // stable across calls.
    EXPECT_EQ(group.dumpJson(), group.dumpJson());
}

} // namespace
} // namespace cpe
