/**
 * @file
 * Functional-executor tests: per-opcode semantics, memory access
 * widths and sign extension, control flow, mode switching, the
 * DynInst trace records, and the sparse memory model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "func/executor.hh"
#include "prog/builder.hh"
#include "util/error.hh"

#include "expect_error.hh"

namespace cpe::func {
namespace {

using namespace prog::reg;
using prog::Builder;
using prog::Label;
using prog::Program;

/** Build, run, and return the executor for register inspection. */
template <typename EmitFn>
Executor
runProgram(EmitFn &&emit)
{
    Builder b("t");
    emit(b);
    b.halt();
    static std::vector<Program> keep_alive;  // executor holds a pointer
    keep_alive.push_back(b.build());
    Executor exec(keep_alive.back());
    exec.run();
    return exec;
}

TEST(Exec, IntArithmetic)
{
    auto exec = runProgram([](Builder &b) {
        b.loadImm(t0, 100);
        b.loadImm(t1, 7);
        b.add(s0, t0, t1);    // 107
        b.sub(s1, t0, t1);    // 93
        b.mul(s2, t0, t1);    // 700
        b.div(s3, t0, t1);    // 14
        b.rem(s4, t0, t1);    // 2
    });
    EXPECT_EQ(exec.state().readReg(s0), 107u);
    EXPECT_EQ(exec.state().readReg(s1), 93u);
    EXPECT_EQ(exec.state().readReg(s2), 700u);
    EXPECT_EQ(exec.state().readReg(s3), 14u);
    EXPECT_EQ(exec.state().readReg(s4), 2u);
}

TEST(Exec, SignedDivision)
{
    auto exec = runProgram([](Builder &b) {
        b.loadImm(t0, static_cast<std::uint64_t>(-100));
        b.loadImm(t1, 7);
        b.div(s0, t0, t1);    // -14 (trunc toward zero)
        b.rem(s1, t0, t1);    // -2
        b.loadImm(t2, 0);
        b.div(s2, t0, t2);    // div by zero -> all ones
        b.rem(s3, t0, t2);    // rem by zero -> dividend
    });
    EXPECT_EQ(static_cast<std::int64_t>(exec.state().readReg(s0)), -14);
    EXPECT_EQ(static_cast<std::int64_t>(exec.state().readReg(s1)), -2);
    EXPECT_EQ(exec.state().readReg(s2), ~0ull);
    EXPECT_EQ(static_cast<std::int64_t>(exec.state().readReg(s3)), -100);
}

TEST(Exec, LogicAndShifts)
{
    auto exec = runProgram([](Builder &b) {
        b.loadImm(t0, 0xF0F0);
        b.loadImm(t1, 0x0FF0);
        b.and_(s0, t0, t1);   // 0x0FF0 & 0xF0F0 = 0x00F0
        b.or_(s1, t0, t1);    // 0xFFF0
        b.xor_(s2, t0, t1);   // 0xFF00
        b.slli(s3, t0, 4);    // 0xF0F00
        b.srli(s4, t0, 4);    // 0xF0F
        b.loadImm(t2, static_cast<std::uint64_t>(-16));
        b.srai(s5, t2, 2);    // -4
        b.slt(s6, t2, t0);    // -16 < 0xF0F0 -> 1
        b.sltu(s7, t2, t0);   // huge unsigned -> 0
    });
    EXPECT_EQ(exec.state().readReg(s0), 0x00F0u);
    EXPECT_EQ(exec.state().readReg(s1), 0xFFF0u);
    EXPECT_EQ(exec.state().readReg(s2), 0xFF00u);
    EXPECT_EQ(exec.state().readReg(s3), 0xF0F00u);
    EXPECT_EQ(exec.state().readReg(s4), 0xF0Fu);
    EXPECT_EQ(static_cast<std::int64_t>(exec.state().readReg(s5)), -4);
    EXPECT_EQ(exec.state().readReg(s6), 1u);
    EXPECT_EQ(exec.state().readReg(s7), 0u);
}

TEST(Exec, ZeroRegisterIsImmutable)
{
    auto exec = runProgram([](Builder &b) {
        b.addi(zero, zero, 55);
        b.add(s0, zero, zero);
    });
    EXPECT_EQ(exec.state().readReg(zero), 0u);
    EXPECT_EQ(exec.state().readReg(s0), 0u);
}

TEST(Exec, LoadStoreWidthsAndSigns)
{
    auto exec = runProgram([](Builder &b) {
        Addr data = b.allocData(64, 8);
        b.setData64(data, 0xFFEE'DDCC'BBAA'9988ull);
        b.loadImm(s0, data);
        b.lb(s1, 0, s0);   // 0x88 sign-extended -> -120
        b.lbu(s2, 0, s0);  // 0x88
        b.lh(s3, 0, s0);   // 0x9988 -> negative
        b.lhu(s4, 0, s0);  // 0x9988
        b.lw(s5, 0, s0);   // 0xBBAA9988 -> negative
        b.lwu(s6, 0, s0);  // 0xBBAA9988
        b.ld(s7, 0, s0);   // full word

        b.loadImm(t0, 0x1234'5678'9ABC'DEF0ull);
        b.sb(t0, 16, s0);
        b.sh(t0, 18, s0);
        b.sw(t0, 20, s0);
        b.sd(t0, 24, s0);
        b.ld(s8, 16, s0);
        b.ld(s9, 24, s0);
    });
    auto &st = exec.state();
    EXPECT_EQ(static_cast<std::int64_t>(st.readReg(s1)), -120);
    EXPECT_EQ(st.readReg(s2), 0x88u);
    EXPECT_EQ(static_cast<std::int64_t>(st.readReg(s3)),
              static_cast<std::int16_t>(0x9988));
    EXPECT_EQ(st.readReg(s4), 0x9988u);
    EXPECT_EQ(static_cast<std::int64_t>(st.readReg(s5)),
              static_cast<std::int32_t>(0xBBAA9988));
    EXPECT_EQ(st.readReg(s6), 0xBBAA9988u);
    EXPECT_EQ(st.readReg(s7), 0xFFEE'DDCC'BBAA'9988ull);
    // sb wrote F0 at +16, sh wrote DEF0 at +18, sw wrote 9ABCDEF0 at +20.
    EXPECT_EQ(st.readReg(s8) & 0xff, 0xF0u);
    EXPECT_EQ((st.readReg(s8) >> 16) & 0xffff, 0xDEF0u);
    EXPECT_EQ(st.readReg(s9), 0x1234'5678'9ABC'DEF0ull);
}

TEST(Exec, FloatingPoint)
{
    auto exec = runProgram([](Builder &b) {
        Addr data = b.allocData(32, 8);
        b.setDataF64(data, 1.5);
        b.setDataF64(data + 8, -2.25);
        b.loadImm(s0, data);
        b.fld(f(0), 0, s0);
        b.fld(f(1), 8, s0);
        b.fadd(f(2), f(0), f(1));   // -0.75
        b.fsub(f(3), f(0), f(1));   // 3.75
        b.fmul(f(4), f(0), f(1));   // -3.375
        b.fdiv(f(5), f(1), f(0));   // -1.5
        b.fneg(f(6), f(1));         // 2.25
        b.fcmplt(s1, f(1), f(0));   // 1
        b.fcmplt(s2, f(0), f(1));   // 0
        b.loadImm(t0, 7);
        b.fcvtI2f(f(7), t0);        // 7.0
        b.fcvtF2i(s3, f(7));        // 7
        b.fsd(f(2), 16, s0);
    });
    auto &st = exec.state();
    EXPECT_DOUBLE_EQ(st.readFpReg(f(2)), -0.75);
    EXPECT_DOUBLE_EQ(st.readFpReg(f(3)), 3.75);
    EXPECT_DOUBLE_EQ(st.readFpReg(f(4)), -3.375);
    EXPECT_DOUBLE_EQ(st.readFpReg(f(5)), -1.5);
    EXPECT_DOUBLE_EQ(st.readFpReg(f(6)), 2.25);
    EXPECT_EQ(st.readReg(s1), 1u);
    EXPECT_EQ(st.readReg(s2), 0u);
    EXPECT_EQ(st.readReg(s3), 7u);
    std::uint64_t raw = exec.memory().read(prog::layout::DataBase + 16, 8);
    double stored;
    std::memcpy(&stored, &raw, 8);
    EXPECT_DOUBLE_EQ(stored, -0.75);
}

TEST(Exec, BranchVariants)
{
    auto exec = runProgram([](Builder &b) {
        b.loadImm(s0, 0);  // score
        b.loadImm(t0, 5);
        b.loadImm(t1, static_cast<std::uint64_t>(-5));

        auto check = [&](auto emit_branch, int bit) {
            Label taken = b.newLabel();
            Label after = b.newLabel();
            emit_branch(taken);
            b.j(after);
            b.bind(taken);
            b.ori(s0, s0, 1 << bit);
            b.bind(after);
        };
        check([&](Label l) { b.beq(t0, t0, l); }, 0);    // 5 == 5: taken
        check([&](Label l) { b.bne(t0, t1, l); }, 1);    // taken
        check([&](Label l) { b.blt(t1, t0, l); }, 2);    // -5 < 5: taken
        check([&](Label l) { b.bge(t0, t1, l); }, 3);    // taken
        check([&](Label l) { b.bltu(t1, t0, l); }, 4);   // huge: NOT taken
        check([&](Label l) { b.bgeu(t1, t0, l); }, 5);   // taken
    });
    EXPECT_EQ(exec.state().readReg(s0), 0b101111u);
}

TEST(Exec, JalrLinksAndJumps)
{
    auto exec = runProgram([](Builder &b) {
        Label fn = b.newLabel();
        Label main = b.newLabel();
        b.j(main);
        b.bind(fn);
        b.loadImm(s1, 99);
        b.ret();
        b.bind(main);
        // Call through a register (JALR with computed target).
        b.loadImm(t0,
                  prog::layout::TextBase + 4);  // address of fn's body
        b.jalr(ra, t0, 0);
        b.mv(s2, ra);  // link register points past the jalr
    });
    EXPECT_EQ(exec.state().readReg(s1), 99u);
    EXPECT_NE(exec.state().readReg(s2), 0u);
}

TEST(Exec, ModeSwitchTracked)
{
    Builder b("mode");
    b.emode();
    b.nop();
    b.xmode();
    b.nop();
    b.halt();
    Program p = b.build();
    Executor exec(p);

    DynInst record;
    ASSERT_TRUE(exec.next(record));  // emode: executed in user mode
    EXPECT_FALSE(record.kernelMode);
    ASSERT_TRUE(exec.next(record));  // nop: kernel
    EXPECT_TRUE(record.kernelMode);
    ASSERT_TRUE(exec.next(record));  // xmode: still kernel
    EXPECT_TRUE(record.kernelMode);
    ASSERT_TRUE(exec.next(record));  // nop: user again
    EXPECT_FALSE(record.kernelMode);
}

TEST(Exec, TraceRecordsAreComplete)
{
    Builder b("trace");
    Addr data = b.allocData(16, 8);
    b.loadImm(t0, data);       // may expand to several insts
    b.sd(t0, 0, t0);
    b.ld(t1, 0, t0);
    Label skip = b.newLabel();
    b.beq(t0, t1, skip);
    b.nop();
    b.bind(skip);
    b.halt();
    Program p = b.build();
    Executor exec(p);

    auto trace = recordTrace(exec, 100);
    ASSERT_GE(trace.size(), 5u);

    // Sequence numbers are dense and start at 1.
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].seq, i + 1);
    // nextPc links the committed path.
    for (std::size_t i = 0; i + 1 < trace.size(); ++i)
        EXPECT_EQ(trace[i].nextPc, trace[i + 1].pc);

    // Find the store and load records.
    bool saw_store = false, saw_load = false, saw_taken = false;
    for (const auto &record : trace) {
        if (record.isStore()) {
            saw_store = true;
            EXPECT_EQ(record.memAddr, data);
            EXPECT_EQ(record.memSize, 8);
        }
        if (record.isLoad()) {
            saw_load = true;
            EXPECT_EQ(record.memAddr, data);
        }
        if (record.isControl() && record.taken)
            saw_taken = true;
    }
    EXPECT_TRUE(saw_store);
    EXPECT_TRUE(saw_load);
    EXPECT_TRUE(saw_taken);  // the beq compares equal values
}

TEST(Exec, VectorTraceSourceReplays)
{
    Builder b("vts");
    b.loadImm(t0, 3);
    b.halt();
    Program p = b.build();
    Executor exec(p);
    auto trace = recordTrace(exec, 100);

    VectorTraceSource source(trace);
    DynInst record;
    std::size_t count = 0;
    while (source.next(record))
        EXPECT_EQ(record.seq, trace[count++].seq);
    EXPECT_EQ(count, trace.size());
    source.rewind();
    EXPECT_TRUE(source.next(record));
    EXPECT_EQ(record.seq, trace[0].seq);
}

TEST(Exec, InstructionFuse)
{
    Builder b("fuse");
    Label spin = b.here();
    b.j(spin);
    b.halt();
    Program p = b.build();
    Executor exec(p, 1000);
    CPE_EXPECT_THROW_MSG(exec.run(), ProgressError,
                         "exceeded instruction fuse");
}

TEST(ExecDeathTest, UnalignedAccessPanics)
{
    Builder b("unaligned");
    Addr data = b.allocData(16, 8);
    b.loadImm(t0, data + 1);
    b.ld(t1, 0, t0);
    b.halt();
    Program p = b.build();
    Executor exec(p);
    EXPECT_DEATH(exec.run(), "unaligned");
}

TEST(Memory, SparsePagesAndBlocks)
{
    Memory mem;
    EXPECT_EQ(mem.pageCount(), 0u);
    EXPECT_EQ(mem.read(0x5000, 8), 0u);  // untouched reads as zero
    EXPECT_EQ(mem.pageCount(), 0u);      // ...without allocating

    mem.write(0x5000, 0xAABB, 2);
    EXPECT_EQ(mem.pageCount(), 1u);
    EXPECT_EQ(mem.read(0x5000, 2), 0xAABBu);
    EXPECT_EQ(mem.read(0x5001, 1), 0xAAu);

    // Cross-page block write/read.
    std::vector<std::uint8_t> out(64), in(64);
    for (unsigned i = 0; i < 64; ++i)
        in[i] = static_cast<std::uint8_t>(i + 1);
    Addr boundary = 2 * Memory::PageBytes - 32;
    mem.writeBlock(boundary, in);
    mem.readBlock(boundary, out);
    EXPECT_EQ(in, out);
    EXPECT_EQ(mem.pageCount(), 3u);

    mem.clear();
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(ArchState, DumpAndCompare)
{
    ArchState a, c;
    a.writeReg(5, 42);
    EXPECT_FALSE(a.sameAs(c));
    c.writeReg(5, 42);
    EXPECT_TRUE(a.sameAs(c));
    c.setKernelMode(true);
    EXPECT_FALSE(a.sameAs(c));
    EXPECT_NE(a.dump().find("x5"), std::string::npos);
}

} // namespace
} // namespace cpe::func
