/**
 * @file
 * Unit tests for the utility layer: bit manipulation, RNG determinism,
 * and the table formatter.
 */

#include <gtest/gtest.h>

#include "util/bits.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace cpe {
namespace {

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(32), 5u);
    EXPECT_EQ(floorLog2(1ull << 40), 40u);
}

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignDown(0x1230, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1230, 16), 0x1230u);
    EXPECT_EQ(alignDown(31, 32), 0u);
    EXPECT_EQ(alignUp(1, 32), 32u);
}

TEST(Bits, BitsExtractInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xff, 7, 0), 0xffu);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x7ff, 12), 2047);
    EXPECT_EQ(sext(0, 12), 0);
    EXPECT_EQ(sext(0xffffffffffffffffull, 64), -1);
}

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next64();
        EXPECT_EQ(va, b.next64());
        if (va != c.next64())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t value = rng.range(-3, 3);
        EXPECT_GE(value, -3);
        EXPECT_LE(value, 3);
        saw_lo |= value == -3;
        saw_hi |= value == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformAndChance)
{
    Rng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);

    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Table, RendersAligned)
{
    TextTable table;
    table.addHeader({"name", "value"});
    table.addRow({"alpha", "1.000"});
    table.addRow({"b", "22.5"});
    std::string text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    // Numeric cells right-align: "22.5" should end at the same column
    // as "1.000".
    EXPECT_NE(text.find(" 22.5"), std::string::npos);
}

TEST(Table, Csv)
{
    TextTable table;
    table.addHeader({"a", "b"});
    table.addRow({"x,y", "2"});
    std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("\"x,y\",2"), std::string::npos);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(std::uint64_t{1234567}), "1,234,567");
    EXPECT_EQ(TextTable::num(std::uint64_t{12}), "12");
}

} // namespace
} // namespace cpe
