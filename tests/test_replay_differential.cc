/**
 * @file
 * The replay determinism contract: a timing run replaying a shared
 * committed-path capture must be byte-identical to one driving the
 * functional model live — every SimResult field, the stats dump and
 * JSON, observability artifacts (traces, timeseries, profiles), and
 * whole sweep-grid documents, serial and parallel.  This is what makes
 * it safe for cpe_eval to replay by default.
 */

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "obs/tracer.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "sim/trace_cache.hh"
#include "util/json.hh"

namespace cpe::sim {
namespace {

SimConfig
seedConfig(const std::string &workload)
{
    SimConfig config = SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        core::PortTechConfig::singlePortAllTechniques();
    return config;
}

/** Every measured field of two results must match exactly. */
void
expectIdentical(const SimResult &live, const SimResult &replayed,
                const std::string &what)
{
    EXPECT_EQ(live.cycles, replayed.cycles) << what;
    EXPECT_EQ(live.insts, replayed.insts) << what;
    EXPECT_EQ(live.ipc, replayed.ipc) << what;
    EXPECT_EQ(live.portUtilization, replayed.portUtilization) << what;
    EXPECT_EQ(live.l1dMissRate, replayed.l1dMissRate) << what;
    EXPECT_EQ(live.lineBufferHitRate, replayed.lineBufferHitRate) << what;
    EXPECT_EQ(live.sbStoresPerDrain, replayed.sbStoresPerDrain) << what;
    EXPECT_EQ(live.loadPortFraction, replayed.loadPortFraction) << what;
    EXPECT_EQ(live.condAccuracy, replayed.condAccuracy) << what;
    EXPECT_EQ(live.storeCommitStalls, replayed.storeCommitStalls) << what;
    EXPECT_EQ(live.modeSwitches, replayed.modeSwitches) << what;
    EXPECT_EQ(live.statsDump, replayed.statsDump) << what;
    EXPECT_EQ(live.statsJson, replayed.statsJson) << what;
}

TEST(ReplayDifferential, SerialRunsByteIdentical)
{
    TraceCache cache;
    for (const std::string workload : {"copy", "crc", "histogram"}) {
        SimResult live = simulate(seedConfig(workload));

        SimConfig replay = seedConfig(workload);
        replay.traceCache = &cache;
        SimResult replayed = simulate(replay);

        expectIdentical(live, replayed, workload);
    }
    EXPECT_EQ(cache.stats().captures, 3u);
}

TEST(ReplayDifferential, ObsArtifactsByteIdentical)
{
    // Tracing + sampling + profiling, live vs replayed: the capture
    // must not change a single observed event either.
    auto observed = [](TraceCache *cache) {
        obs::StringTraceSink sink;
        SimConfig config = seedConfig("copy");
        config.traceCache = cache;
        config.obs.traceSink = &sink;
        config.obs.sampleCycles = 4000;
        config.obs.profileTop = 5;
        SimResult result = simulate(config);
        return std::make_pair(result, sink.text());
    };

    auto live = observed(nullptr);
    TraceCache cache;
    // Warm the cache so the observed run is a pure replay.
    SimConfig warm = seedConfig("copy");
    warm.traceCache = &cache;
    simulate(warm);
    auto replayed = observed(&cache);

    expectIdentical(live.first, replayed.first, "observed copy");
    EXPECT_EQ(live.first.timeseriesJson, replayed.first.timeseriesJson);
    EXPECT_EQ(live.first.profileJson, replayed.first.profileJson);
    EXPECT_EQ(live.second, replayed.second) << "event traces differ";
}

TEST(ReplayDifferential, ParallelSweepGridByteIdentical)
{
    std::vector<SimConfig> live;
    std::vector<SimConfig> replayed;
    TraceCache cache;
    for (const std::string workload : {"copy", "crc"}) {
        for (bool dual : {false, true}) {
            SimConfig config = seedConfig(workload);
            if (dual)
                config.core.dcache.tech =
                    core::PortTechConfig::dualPortBase();
            config.label = dual ? "dual" : "techniques";
            live.push_back(config);
            config.traceCache = &cache;
            replayed.push_back(config);
        }
    }

    // Forced-parallel runner: concurrent workers race to acquire each
    // workload's capture; the grids must still match byte for byte.
    SweepRunner runner(4);
    std::string from_live = runner.runGrid(live).toJson().dump(2);
    std::string from_replay = runner.runGrid(replayed).toJson().dump(2);
    EXPECT_EQ(from_live, from_replay);

    TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.captures, 2u) << "one capture per workload";
    EXPECT_EQ(stats.replays, 2u);
}

TEST(ReplayDifferential, F5GridMatchesLive)
{
    // The acceptance grid: F5's full variant set (7 timing variants of
    // one functional stream) over one workload, live vs replayed,
    // serial and parallel.
    const exp::Experiment &f5 =
        exp::ExperimentRegistry::instance().get("F5");
    const std::vector<std::string> workloads = {"copy"};

    exp::setTraceCache(nullptr);
    auto live_configs = exp::suiteConfigs(f5.variants(), workloads);
    std::string live =
        SweepRunner(1).runGrid(live_configs).toJson().dump(2);

    TraceCache cache;
    exp::setTraceCache(&cache);
    auto replay_configs = exp::suiteConfigs(f5.variants(), workloads);
    exp::setTraceCache(nullptr);

    std::string serial =
        SweepRunner(1).runGrid(replay_configs).toJson().dump(2);
    std::string parallel =
        SweepRunner(4).runGrid(replay_configs).toJson().dump(2);

    EXPECT_EQ(live, serial);
    EXPECT_EQ(live, parallel);
    TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.captures, 1u)
        << "one functional execution for the whole grid";
    EXPECT_EQ(stats.replays, 2u * f5.variants().size() - 1);
}

} // namespace
} // namespace cpe::sim
