/**
 * @file
 * Randomized stress tests of the D-cache unit: thousands of random
 * load/store/tick operations against every technique configuration,
 * checking conservation invariants that must hold regardless of the
 * interleaving:
 *
 *   - every accepted load is attributed to exactly one source;
 *   - port grants never exceed ports x cycles;
 *   - the store buffer never exceeds capacity, and everything drains;
 *   - line buffers never hold bytes the cache/store buffer chain would
 *     contradict (spot-checked via the store-buffer exclusion rule);
 *   - drainAll converges from any reachable state.
 */

#include <gtest/gtest.h>

#include "core/dcache_unit.hh"
#include "util/random.hh"

namespace cpe::core {
namespace {

struct StressParams
{
    PortTechConfig tech;
    std::uint64_t seed;
};

class DCacheStress : public ::testing::TestWithParam<StressParams>
{
};

TEST_P(DCacheStress, InvariantsHoldUnderRandomTraffic)
{
    const auto &[tech, seed] = GetParam();
    DCacheParams params;
    params.tech = tech;
    params.mshrs = 4;  // small: exercise the full/reject paths
    params.victimEntries = (seed % 2) ? 4 : 0;  // alternate victim cache
    params.nextLinePrefetch = (seed % 2) == 0;  // and prefetching
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Rng rng(seed);
    Cycle now = 0;
    std::uint64_t accepted_loads = 0;
    std::uint64_t accepted_stores = 0;

    for (int cycle = 0; cycle < 4000; ++cycle, ++now) {
        unit.beginCycle(now);

        unsigned ops = static_cast<unsigned>(rng.below(4));
        for (unsigned op = 0; op < ops; ++op) {
            // 8 KiB hot region + occasional far misses.
            Addr addr = rng.chance(0.9)
                ? 0x1000 + (rng.below(8 * 1024) & ~7ull)
                : 0x100000 + (rng.below(1024 * 1024) & ~7ull);
            unsigned size = 1u << rng.below(4);
            addr &= ~static_cast<Addr>(size - 1);

            if (rng.chance(0.6)) {
                auto result = unit.tryLoad(addr, size, now);
                if (result.accepted) {
                    ++accepted_loads;
                    EXPECT_GE(result.ready, now);
                }
            } else {
                accepted_stores +=
                    unit.tryStore(addr, size, now) ? 1 : 0;
            }
        }

        if (rng.chance(0.01))
            unit.onModeSwitch();

        // Capacity invariants, every cycle.
        if (unit.storeBuffer().enabled()) {
            EXPECT_LE(unit.storeBuffer().occupancy(),
                      unit.storeBuffer().capacity());
        }
        EXPECT_LE(unit.mshrs().occupancy(), unit.mshrs().capacity());
        unit.endCycle(now);
    }

    // Load-source attribution is conserved.
    std::uint64_t attributed =
        unit.loadsForwarded.value() + unit.loadsLineBuffer.value() +
        unit.loadsCacheHit.value() + unit.loadsMiss.value() +
        unit.loadsMissMerged.value();
    EXPECT_EQ(attributed, accepted_loads);

    // Store attribution likewise.
    EXPECT_EQ(unit.storesToBuffer.value() + unit.storesDirect.value(),
              accepted_stores);

    // Port-cycle accounting: busy + idle == ports * cycles ticked.
    EXPECT_EQ(unit.ports().busyPortCycles.value() +
                  unit.ports().idlePortCycles.value(),
              static_cast<std::uint64_t>(tech.ports) * 4000);

    // Everything in flight retires.
    Cycle end = unit.drainAll(now);
    EXPECT_FALSE(unit.busy());
    EXPECT_GE(end, now);
    EXPECT_TRUE(unit.storeBuffer().enabled()
                    ? unit.storeBuffer().empty()
                    : true);
    EXPECT_EQ(unit.mshrs().occupancy(), 0u);
}

std::vector<StressParams>
stressMatrix()
{
    std::vector<StressParams> matrix;
    std::vector<PortTechConfig> techs;
    techs.push_back(PortTechConfig::singlePortBase());
    techs.push_back(PortTechConfig::dualPortBase());
    techs.push_back(PortTechConfig::singlePortAllTechniques());

    PortTechConfig no_comb = PortTechConfig::singlePortAllTechniques();
    no_comb.storeCombining = false;
    techs.push_back(no_comb);

    PortTechConfig inval = PortTechConfig::singlePortAllTechniques();
    inval.lineBufferWrite = LineBufferWritePolicy::Invalidate;
    techs.push_back(inval);

    PortTechConfig threshold = PortTechConfig::singlePortAllTechniques();
    threshold.drainPolicy = DrainPolicy::Threshold;
    threshold.drainThreshold = 6;
    techs.push_back(threshold);

    PortTechConfig eager = PortTechConfig::singlePortAllTechniques();
    eager.drainPolicy = DrainPolicy::Eager;
    techs.push_back(eager);

    PortTechConfig banked = PortTechConfig::dualPortBase();
    banked.banks = 2;
    techs.push_back(banked);

    PortTechConfig dedicated = PortTechConfig::singlePortAllTechniques();
    dedicated.fillPolicy = FillPolicy::DedicatedFillPort;
    techs.push_back(dedicated);

    for (const auto &tech : techs)
        for (std::uint64_t seed : {11ull, 22ull})
            matrix.push_back({tech, seed});
    return matrix;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DCacheStress, ::testing::ValuesIn(stressMatrix()),
    [](const ::testing::TestParamInfo<StressParams> &info) {
        // Several configs share a describe() string (they differ in
        // policies it does not print), so prefix the index.
        std::string name = "c" + std::to_string(info.index) + "_" +
                           info.param.tech.describe() + "_s" +
                           std::to_string(info.param.seed);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace cpe::core
