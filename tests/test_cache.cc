/**
 * @file
 * Cache state-model tests: geometry, hit/miss behaviour, LRU and
 * random replacement, dirty tracking, invalidation, and a
 * parameterized sweep over geometries against a reference model.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "mem/cache.hh"
#include "util/random.hh"

namespace cpe::mem {
namespace {

CacheParams
smallCache()
{
    CacheParams params;
    params.name = "test";
    params.sizeBytes = 256;   // 4 sets x 2 ways x 32 B
    params.assoc = 2;
    params.lineBytes = 32;
    return params;
}

TEST(Cache, GeometryDerivation)
{
    Cache cache(smallCache());
    EXPECT_EQ(cache.params().sets(), 4u);
    EXPECT_EQ(cache.lineBytes(), 32u);
    EXPECT_EQ(cache.lineAddr(0x1234), 0x1220u);
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_EQ(cache.misses.value(), 1u);

    cache.fill(0x1000);
    EXPECT_TRUE(cache.probe(0x1000));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x101f, false));  // same line
    EXPECT_FALSE(cache.access(0x1020, false)); // next line
    EXPECT_EQ(cache.hits.value(), 2u);
}

TEST(Cache, LruReplacement)
{
    Cache cache(smallCache());
    // Three lines mapping to set 0 (set stride = 4 * 32 = 128).
    Addr a = 0x1000, b = 0x1080, c = 0x1100;
    cache.fill(a);
    cache.fill(b);
    cache.access(a, false);  // a is now MRU
    auto result = cache.fill(c);
    EXPECT_TRUE(result.evicted);
    EXPECT_EQ(result.evictedAddr, b);  // b was LRU
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(smallCache());
    cache.fill(0x1000);
    cache.access(0x1000, true);  // dirty it
    EXPECT_TRUE(cache.isDirty(0x1000));
    cache.fill(0x1080);
    auto result = cache.fill(0x1100);  // evicts 0x1000 (LRU)
    EXPECT_TRUE(result.evicted);
    EXPECT_EQ(result.evictedAddr, 0x1000u);
    EXPECT_TRUE(result.evictedDirty);
    EXPECT_EQ(cache.writebacks.value(), 1u);
}

TEST(Cache, FillWithDirtyFlag)
{
    Cache cache(smallCache());
    cache.fill(0x2000, true);
    EXPECT_TRUE(cache.isDirty(0x2000));
}

TEST(Cache, SetDirtyAndInvalidate)
{
    Cache cache(smallCache());
    cache.fill(0x1000);
    EXPECT_FALSE(cache.isDirty(0x1000));
    cache.setDirty(0x1000);
    EXPECT_TRUE(cache.isDirty(0x1000));
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.invalidate(0x1000));  // already gone
}

TEST(Cache, FlushAllAndValidLines)
{
    Cache cache(smallCache());
    cache.fill(0x1000);
    cache.fill(0x2000);
    EXPECT_EQ(cache.validLines(), 2u);
    cache.flushAll();
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(Cache, RandomReplacementStaysInSet)
{
    CacheParams params = smallCache();
    params.repl = ReplPolicy::Random;
    Cache cache(params);
    // Fill set 0 beyond capacity many times; victims must always be
    // set-0 lines and the cache must never exceed 2 valid lines/set.
    for (unsigned i = 0; i < 32; ++i) {
        Addr addr = 0x1000 + static_cast<Addr>(i) * 128;
        if (!cache.probe(addr)) {
            auto result = cache.fill(addr);
            if (result.evicted) {
                EXPECT_EQ(cache.lineAddr(result.evictedAddr) % 128, 0x0u)
                    << "victim from wrong set";
            }
        }
    }
    EXPECT_LE(cache.validLines(), 8u);
}

TEST(CacheDeathTest, DoubleFillPanics)
{
    Cache cache(smallCache());
    cache.fill(0x1000);
    EXPECT_DEATH(cache.fill(0x1008), "already-present");
}

TEST(CacheDeathTest, BadGeometry)
{
    CacheParams params = smallCache();
    params.lineBytes = 24;  // not a power of two
    EXPECT_DEATH(Cache{params}, "power of 2");
}

// ---------------------------------------------------------------------
// Property sweep: the cache must agree with a simple reference model
// (per-set LRU lists) across geometries and random traffic.
// ---------------------------------------------------------------------

struct Geometry
{
    std::size_t size;
    unsigned assoc;
    unsigned line;
};

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

/** Minimal known-good model: map set -> LRU-ordered list of tags. */
class ReferenceCache
{
  public:
    ReferenceCache(const Geometry &g)
        : sets_(g.size / (g.assoc * g.line)), assoc_(g.assoc),
          line_(g.line), lru_(sets_)
    {
    }

    bool
    access(Addr addr)
    {
        auto [set, tag] = split(addr);
        auto &list = lru_[set];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (*it == tag) {
                list.erase(it);
                list.push_front(tag);
                return true;
            }
        }
        return false;
    }

    void
    fill(Addr addr)
    {
        auto [set, tag] = split(addr);
        auto &list = lru_[set];
        if (list.size() >= assoc_)
            list.pop_back();
        list.push_front(tag);
    }

  private:
    std::pair<std::size_t, Addr>
    split(Addr addr) const
    {
        Addr line_addr = addr / line_;
        return {static_cast<std::size_t>(line_addr % sets_), line_addr};
    }

    std::size_t sets_;
    unsigned assoc_;
    unsigned line_;
    std::vector<std::list<Addr>> lru_;
};

TEST_P(CacheVsReference, RandomTrafficAgrees)
{
    Geometry g = GetParam();
    CacheParams params;
    params.name = "sweep";
    params.sizeBytes = g.size;
    params.assoc = g.assoc;
    params.lineBytes = g.line;
    Cache cache(params);
    ReferenceCache reference(g);

    Rng rng(g.size + g.assoc * 131 + g.line);
    for (int op = 0; op < 20000; ++op) {
        // Addresses drawn from 4x the cache size: plenty of conflict.
        Addr addr = rng.below(4 * g.size);
        bool hit = cache.access(addr, rng.chance(0.3));
        bool ref_hit = reference.access(addr);
        ASSERT_EQ(hit, ref_hit) << "op " << op << " addr 0x" << std::hex
                                << addr;
        if (!hit) {
            cache.fill(addr);
            reference.fill(addr);
        }
    }
    EXPECT_GT(cache.hits.value(), 0u);
    EXPECT_GT(cache.misses.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Geometry{256, 1, 32}, Geometry{256, 2, 32},
                      Geometry{1024, 4, 32}, Geometry{1024, 2, 16},
                      Geometry{4096, 8, 64}, Geometry{16 * 1024, 2, 32},
                      Geometry{512, 16, 32} /* fully assoc set */));

} // namespace
} // namespace cpe::mem
