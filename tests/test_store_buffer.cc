/**
 * @file
 * Combining-store-buffer tests: insert/merge, coverage classification,
 * window-at-a-time draining under different port widths, priority
 * (forced) drains, ordering of same-line entries without combining,
 * and the restore path.
 */

#include <gtest/gtest.h>

#include "core/store_buffer.hh"
#include "util/bits.hh"

namespace cpe::core {
namespace {

constexpr unsigned Line = 32;

TEST(StoreBuffer, DisabledBuffer)
{
    StoreBuffer sb("sb", 0, Line, true);
    EXPECT_FALSE(sb.enabled());
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, InsertAndCombine)
{
    StoreBuffer sb("sb", 4, Line, true);
    EXPECT_TRUE(sb.insert(0x1000, 8, 1));
    EXPECT_TRUE(sb.insert(0x1008, 8, 2));   // same line: combines
    EXPECT_TRUE(sb.insert(0x1010, 4, 3));   // same line: combines
    EXPECT_EQ(sb.occupancy(), 1u);
    EXPECT_EQ(sb.combines.value(), 2u);
    EXPECT_EQ(sb.inserts.value(), 3u);
    EXPECT_EQ(sb.lineMask(0x1000), 0x000f'ffffull);

    EXPECT_TRUE(sb.insert(0x2000, 8, 4));   // new line
    EXPECT_EQ(sb.occupancy(), 2u);
}

TEST(StoreBuffer, FullRejects)
{
    StoreBuffer sb("sb", 2, Line, true);
    EXPECT_TRUE(sb.insert(0x1000, 8, 1));
    EXPECT_TRUE(sb.insert(0x2000, 8, 1));
    EXPECT_FALSE(sb.insert(0x3000, 8, 1));
    EXPECT_EQ(sb.fullRejects.value(), 1u);
    // But a combining store to a live line still fits.
    EXPECT_TRUE(sb.insert(0x1018, 8, 1));
}

TEST(StoreBuffer, CoverageClasses)
{
    StoreBuffer sb("sb", 4, Line, true);
    sb.insert(0x1008, 8, 1);
    EXPECT_EQ(sb.coverage(0x1008, 8), Coverage::Full);
    EXPECT_EQ(sb.coverage(0x1008, 4), Coverage::Full);
    EXPECT_EQ(sb.coverage(0x100c, 4), Coverage::Full);
    EXPECT_EQ(sb.coverage(0x1000, 8), Coverage::None);
    EXPECT_EQ(sb.coverage(0x2000, 8), Coverage::None);
    // Load spanning buffered + unbuffered bytes: partial.
    EXPECT_EQ(sb.coverage(0x1008, 8), Coverage::Full);
    sb.insert(0x1018, 4, 1);
    EXPECT_EQ(sb.coverage(0x1018, 8), Coverage::Partial);
}

TEST(StoreBuffer, DrainNarrowPortWindowAtATime)
{
    StoreBuffer sb("sb", 4, Line, true);
    sb.insert(0x1000, 8, 1);
    sb.insert(0x1010, 8, 1);   // different 8 B window, same line
    ASSERT_TRUE(sb.drainReady(5));

    auto op1 = sb.drainOne(8, 5);
    EXPECT_EQ(op1.addr, 0x1000u);
    EXPECT_EQ(op1.bytes, 8u);
    EXPECT_FALSE(op1.entryFinished);
    EXPECT_EQ(sb.occupancy(), 1u);

    auto op2 = sb.drainOne(8, 5);
    EXPECT_EQ(op2.addr, 0x1010u);
    EXPECT_TRUE(op2.entryFinished);
    EXPECT_TRUE(sb.empty());
    EXPECT_EQ(sb.drainOps.value(), 2u);
    EXPECT_EQ(sb.bytesDrained.value(), 16u);
}

TEST(StoreBuffer, DrainWidePortWholeLineInOneOp)
{
    StoreBuffer sb("sb", 4, Line, true);
    // Fill the whole line with 4 stores.
    for (unsigned off = 0; off < Line; off += 8)
        sb.insert(0x1000 + off, 8, 1);
    EXPECT_EQ(sb.occupancy(), 1u);

    auto op = sb.drainOne(32, 5);
    EXPECT_EQ(op.addr, 0x1000u);
    EXPECT_EQ(op.bytes, 32u);
    EXPECT_TRUE(op.entryFinished);
    EXPECT_TRUE(sb.empty());
    // Combining ratio: 4 stores retired by 1 port access.
    EXPECT_DOUBLE_EQ(
        static_cast<double>(sb.inserts.value()) / sb.drainOps.value(),
        4.0);
}

TEST(StoreBuffer, FifoOrderAndForcedPriority)
{
    StoreBuffer sb("sb", 4, Line, true);
    sb.insert(0x1000, 8, 1);
    sb.insert(0x2000, 8, 2);
    sb.insert(0x3000, 8, 3);

    // A partial-overlap load flags the 0x3000 entry.
    sb.requestDrain(0x3004);
    EXPECT_TRUE(sb.urgentDrainReady(5));
    auto op = sb.drainOne(8, 5);
    EXPECT_EQ(op.lineAddr, 0x3000u);  // forced entry jumps the queue

    // Without a flag, FIFO order resumes.
    auto op2 = sb.drainOne(8, 5);
    EXPECT_EQ(op2.lineAddr, 0x1000u);
}

TEST(StoreBuffer, BlockedEntriesWait)
{
    StoreBuffer sb("sb", 4, Line, true);
    sb.insert(0x1000, 8, 1);
    sb.blockEntry(0x1000, 100);
    EXPECT_FALSE(sb.drainReady(50));
    EXPECT_TRUE(sb.drainReady(100));
}

TEST(StoreBuffer, RestorePutsExactBytesBack)
{
    StoreBuffer sb("sb", 4, Line, true);
    sb.insert(0x1000, 4, 1);   // bytes 0-3 only
    auto op = sb.drainOne(8, 5);
    EXPECT_EQ(op.validMask, 0xfull);
    EXPECT_TRUE(sb.empty());

    sb.restore(op, 6);
    EXPECT_EQ(sb.occupancy(), 1u);
    EXPECT_EQ(sb.lineMask(0x1000), 0xfull);  // not the whole window
    EXPECT_EQ(sb.coverage(0x1000, 4), Coverage::Full);
    EXPECT_EQ(sb.coverage(0x1004, 4), Coverage::None);
}

TEST(StoreBuffer, NonCombiningKeepsEntriesSeparate)
{
    StoreBuffer sb("sb", 4, Line, false);
    EXPECT_TRUE(sb.insert(0x1000, 8, 1));
    EXPECT_TRUE(sb.insert(0x1008, 8, 2));  // same line, no combine
    EXPECT_EQ(sb.occupancy(), 2u);
    EXPECT_EQ(sb.combines.value(), 0u);

    // Youngest-entry forwarding rule.
    EXPECT_EQ(sb.coverage(0x1008, 8), Coverage::Full);
    EXPECT_EQ(sb.coverage(0x1000, 8), Coverage::Full);

    // Overwrite: the younger entry holds current data for byte 0-7.
    EXPECT_TRUE(sb.insert(0x1000, 4, 3));
    EXPECT_EQ(sb.occupancy(), 3u);
    EXPECT_EQ(sb.coverage(0x1000, 4), Coverage::Full);
    // A full 8-byte load overlaps the youngest (4-byte) entry only
    // partially: must wait.
    EXPECT_EQ(sb.coverage(0x1000, 8), Coverage::Partial);

    // Drains proceed oldest-first, preserving same-line write order.
    auto op1 = sb.drainOne(8, 5);
    EXPECT_EQ(op1.addr, 0x1000u);
    EXPECT_EQ(op1.validMask, 0xffull);
    auto op2 = sb.drainOne(8, 5);
    EXPECT_EQ(op2.addr, 0x1008u);
    auto op3 = sb.drainOne(8, 5);
    EXPECT_EQ(op3.addr, 0x1000u);
    EXPECT_EQ(op3.validMask, 0xfull);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, PeekMatchesDrain)
{
    StoreBuffer sb("sb", 4, Line, true);
    sb.insert(0x1000, 8, 1);
    sb.insert(0x2000, 8, 2);
    sb.requestDrain(0x2000);
    EXPECT_EQ(sb.peekDrainLine(5), 0x2000u);
    auto op = sb.drainOne(8, 5);
    EXPECT_EQ(op.lineAddr, 0x2000u);
    EXPECT_EQ(sb.peekDrainLine(5), 0x1000u);
}

TEST(StoreBufferDeathTest, CrossLineStore)
{
    StoreBuffer sb("sb", 4, Line, true);
    EXPECT_DEATH(sb.insert(0x101c, 8, 1), "crosses");
}

} // namespace
} // namespace cpe::core
