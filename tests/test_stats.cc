/**
 * @file
 * Statistics-package tests: counters, averages, distributions,
 * formulas, group nesting, reset, dump formatting, and the interval
 * sampler's edge cases.
 */

#include <gtest/gtest.h>

#include "stats/sampler.hh"
#include "stats/stats.hh"

namespace cpe::stats {
namespace {

TEST(Scalar, CountsAndResets)
{
    Scalar counter;
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter++;
    counter += 10;
    EXPECT_EQ(counter.value(), 12u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(AverageStat, Mean)
{
    Average avg;
    EXPECT_EQ(avg.mean(), 0.0);
    avg.sample(1.0);
    avg.sample(2.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.count(), 3u);
    avg.reset();
    EXPECT_EQ(avg.count(), 0u);
}

TEST(DistributionStat, Buckets)
{
    Distribution dist;
    dist.init(0, 100, 10);
    dist.sample(5);
    dist.sample(15);
    dist.sample(15);
    dist.sample(-1);
    dist.sample(100);
    EXPECT_EQ(dist.totalSamples(), 5u);
    EXPECT_EQ(dist.buckets()[0], 1u);
    EXPECT_EQ(dist.buckets()[1], 2u);
    EXPECT_EQ(dist.underflow(), 1u);
    EXPECT_EQ(dist.overflow(), 1u);
    EXPECT_DOUBLE_EQ(dist.mean(), (5 + 15 + 15 - 1 + 100) / 5.0);
    EXPECT_EQ(dist.bucketMin(1), 10);

    dist.reset();
    EXPECT_EQ(dist.totalSamples(), 0u);
    EXPECT_EQ(dist.buckets()[1], 0u);
}

TEST(DistributionStat, WeightedSamples)
{
    Distribution dist;
    dist.init(0, 10, 1);
    dist.sample(3, 7);
    EXPECT_EQ(dist.totalSamples(), 7u);
    EXPECT_EQ(dist.buckets()[3], 7u);
}

TEST(Group, DumpAndLookups)
{
    StatGroup group("unit");
    Scalar hits, misses;
    group.addScalar("hits", &hits, "hit count");
    group.addScalar("misses", &misses, "miss count");
    group.addFormula(
        "ratio",
        [&]() {
            std::uint64_t total = hits.value() + misses.value();
            return total ? static_cast<double>(hits.value()) / total : 0.0;
        },
        "hit ratio");

    hits += 3;
    ++misses;

    EXPECT_EQ(group.scalarValue("hits"), 3u);
    EXPECT_EQ(group.scalarValue("misses"), 1u);
    EXPECT_DOUBLE_EQ(group.formulaValue("ratio"), 0.75);

    std::string dump = group.dump();
    EXPECT_NE(dump.find("unit.hits"), std::string::npos);
    EXPECT_NE(dump.find("# hit count"), std::string::npos);
    EXPECT_NE(dump.find("0.7500"), std::string::npos);
}

TEST(Group, NestingAndReset)
{
    StatGroup parent("core");
    StatGroup child("cache");
    Scalar a, b;
    parent.addScalar("a", &a, "parent stat");
    child.addScalar("b", &b, "child stat");
    parent.addChild(&child);

    a += 5;
    b += 7;
    std::string dump = parent.dump();
    EXPECT_NE(dump.find("core.a"), std::string::npos);
    EXPECT_NE(dump.find("core.cache.b"), std::string::npos);

    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Group, CsvExport)
{
    StatGroup parent("core");
    StatGroup child("cache");
    Scalar hits;
    Average lat;
    parent.addScalar("hits", &hits, "x");
    child.addAverage("latency", &lat, "y");
    parent.addChild(&child);
    hits += 3;
    lat.sample(2.0);
    lat.sample(4.0);
    std::string csv = parent.dumpCsv();
    EXPECT_NE(csv.find("core.hits,3"), std::string::npos);
    EXPECT_NE(csv.find("core.cache.latency,3"), std::string::npos);
}

TEST(GroupDeathTest, MissingStatPanics)
{
    StatGroup group("g");
    EXPECT_DEATH(group.scalarValue("nope"), "no scalar stat");
    EXPECT_DEATH(group.formulaValue("nope"), "no formula stat");
}

/** One group with one counter, ready for sampling tests. */
struct SamplerFixture
{
    StatGroup group{"core"};
    Scalar committed;

    SamplerFixture()
    {
        group.addScalar("committed", &committed, "insts");
    }
};

TEST(Sampler, DisabledSamplerIsInert)
{
    SamplerFixture fx;
    IntervalSampler sampler(0);
    EXPECT_FALSE(sampler.enabled());
    sampler.attach(fx.group);
    sampler.start(0);
    fx.committed += 10;
    sampler.tick(100);
    sampler.finalize(100);
    EXPECT_EQ(sampler.intervalCount(), 0u);
    Json out = sampler.toJson();
    EXPECT_EQ(out.at("interval_cycles").asNumber(), 0.0);
    EXPECT_TRUE(out.at("intervals").items().empty());
}

TEST(Sampler, IntervalLongerThanRunYieldsOnePartialRecord)
{
    SamplerFixture fx;
    IntervalSampler sampler(1000);
    sampler.attach(fx.group);
    sampler.start(0);
    fx.committed += 42;
    for (Cycle now = 1; now <= 100; ++now)
        sampler.tick(now);
    sampler.finalize(100);

    ASSERT_EQ(sampler.intervalCount(), 1u);
    const Json &record = sampler.records().front();
    EXPECT_EQ(record.at("start").asNumber(), 0.0);
    EXPECT_EQ(record.at("end").asNumber(), 100.0);
    EXPECT_EQ(record.at("cycles").asNumber(), 100.0);
    EXPECT_EQ(record.at("stats").at("core.committed").asNumber(), 42.0);
}

TEST(Sampler, ExactBoundaryEndLeavesNoZeroLengthTail)
{
    SamplerFixture fx;
    IntervalSampler sampler(50);
    sampler.attach(fx.group);
    sampler.start(0);
    fx.committed += 7;
    for (Cycle now = 1; now <= 100; ++now)
        sampler.tick(now);
    // The run ended exactly on the second boundary: finalize must not
    // append an empty third record, and a second finalize is a no-op.
    sampler.finalize(100);
    sampler.finalize(100);
    EXPECT_EQ(sampler.intervalCount(), 2u);
}

TEST(Sampler, DeltasSumToFinalTotalAcrossIntervals)
{
    SamplerFixture fx;
    IntervalSampler sampler(10);
    sampler.attach(fx.group);
    sampler.start(0);
    for (Cycle now = 1; now <= 35; ++now) {
        fx.committed += 2;
        sampler.tick(now);
    }
    sampler.finalize(35);

    ASSERT_EQ(sampler.intervalCount(), 4u);  // 3 full + 1 partial tail
    double sum = 0.0;
    for (const Json &record : sampler.records()) {
        if (const Json *delta =
                record.at("stats").find("core.committed"))
            sum += delta->asNumber();
    }
    EXPECT_EQ(sum, static_cast<double>(fx.committed.value()));
}

TEST(Sampler, ResetBetweenIntervalsClampsTheDelta)
{
    SamplerFixture fx;
    IntervalSampler sampler(10);
    sampler.attach(fx.group);
    sampler.start(0);
    fx.committed += 100;
    sampler.tick(10);  // first record: delta 100

    // The warm-up boundary: every counter goes backwards.
    fx.group.resetAll();
    fx.committed += 3;
    sampler.tick(20);  // second record: post-reset value, not underflow

    ASSERT_EQ(sampler.intervalCount(), 2u);
    EXPECT_EQ(sampler.records()[0]
                  .at("stats").at("core.committed").asNumber(),
              100.0);
    EXPECT_EQ(sampler.records()[1]
                  .at("stats").at("core.committed").asNumber(),
              3.0);
}

TEST(Sampler, QuietIntervalYieldsFiniteRates)
{
    // An interval with no port or line-buffer activity divides 0 by 0
    // for the derived rates: the record must carry 0.0, never the
    // NaN/inf a bare division would emit (Json renders those as null,
    // breaking trace consumers).
    SamplerFixture fx;
    IntervalSampler sampler(10);
    sampler.attach(fx.group);
    sampler.start(0);
    fx.committed += 10;
    sampler.tick(10);

    ASSERT_EQ(sampler.intervalCount(), 1u);
    const Json &record = sampler.records().front();
    EXPECT_EQ(record.at("ipc").asNumber(), 1.0);
    EXPECT_EQ(record.at("port_util").asNumber(), 0.0);
    EXPECT_EQ(record.at("lb_hit_rate").asNumber(), 0.0);
    EXPECT_EQ(record.dump().find("null"), std::string::npos);
}

TEST(Sampler, ZeroDeltaScalarsAreOmitted)
{
    SamplerFixture fx;
    Scalar idle;
    fx.group.addScalar("idle", &idle, "never bumped");
    IntervalSampler sampler(10);
    sampler.attach(fx.group);
    sampler.start(0);
    fx.committed += 1;
    sampler.tick(10);

    ASSERT_EQ(sampler.intervalCount(), 1u);
    const Json &stats = sampler.records().front().at("stats");
    EXPECT_TRUE(stats.find("core.committed"));
    EXPECT_FALSE(stats.find("core.idle"));
}

TEST(Group, ForEachScalarWalksTheTreeWithDottedNames)
{
    StatGroup parent("core");
    StatGroup child("cache");
    Scalar a, b;
    parent.addScalar("a", &a, "x");
    child.addScalar("b", &b, "y");
    parent.addChild(&child);

    std::vector<std::string> names;
    parent.forEachScalar(
        [&names](const std::string &name, const Scalar &) {
            names.push_back(name);
        });
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "core.a");
    EXPECT_EQ(names[1], "core.cache.b");
}

} // namespace
} // namespace cpe::stats
