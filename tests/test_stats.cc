/**
 * @file
 * Statistics-package tests: counters, averages, distributions,
 * formulas, group nesting, reset, and dump formatting.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"

namespace cpe::stats {
namespace {

TEST(Scalar, CountsAndResets)
{
    Scalar counter;
    EXPECT_EQ(counter.value(), 0u);
    ++counter;
    counter++;
    counter += 10;
    EXPECT_EQ(counter.value(), 12u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(AverageStat, Mean)
{
    Average avg;
    EXPECT_EQ(avg.mean(), 0.0);
    avg.sample(1.0);
    avg.sample(2.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.count(), 3u);
    avg.reset();
    EXPECT_EQ(avg.count(), 0u);
}

TEST(DistributionStat, Buckets)
{
    Distribution dist;
    dist.init(0, 100, 10);
    dist.sample(5);
    dist.sample(15);
    dist.sample(15);
    dist.sample(-1);
    dist.sample(100);
    EXPECT_EQ(dist.totalSamples(), 5u);
    EXPECT_EQ(dist.buckets()[0], 1u);
    EXPECT_EQ(dist.buckets()[1], 2u);
    EXPECT_EQ(dist.underflow(), 1u);
    EXPECT_EQ(dist.overflow(), 1u);
    EXPECT_DOUBLE_EQ(dist.mean(), (5 + 15 + 15 - 1 + 100) / 5.0);
    EXPECT_EQ(dist.bucketMin(1), 10);

    dist.reset();
    EXPECT_EQ(dist.totalSamples(), 0u);
    EXPECT_EQ(dist.buckets()[1], 0u);
}

TEST(DistributionStat, WeightedSamples)
{
    Distribution dist;
    dist.init(0, 10, 1);
    dist.sample(3, 7);
    EXPECT_EQ(dist.totalSamples(), 7u);
    EXPECT_EQ(dist.buckets()[3], 7u);
}

TEST(Group, DumpAndLookups)
{
    StatGroup group("unit");
    Scalar hits, misses;
    group.addScalar("hits", &hits, "hit count");
    group.addScalar("misses", &misses, "miss count");
    group.addFormula(
        "ratio",
        [&]() {
            std::uint64_t total = hits.value() + misses.value();
            return total ? static_cast<double>(hits.value()) / total : 0.0;
        },
        "hit ratio");

    hits += 3;
    ++misses;

    EXPECT_EQ(group.scalarValue("hits"), 3u);
    EXPECT_EQ(group.scalarValue("misses"), 1u);
    EXPECT_DOUBLE_EQ(group.formulaValue("ratio"), 0.75);

    std::string dump = group.dump();
    EXPECT_NE(dump.find("unit.hits"), std::string::npos);
    EXPECT_NE(dump.find("# hit count"), std::string::npos);
    EXPECT_NE(dump.find("0.7500"), std::string::npos);
}

TEST(Group, NestingAndReset)
{
    StatGroup parent("core");
    StatGroup child("cache");
    Scalar a, b;
    parent.addScalar("a", &a, "parent stat");
    child.addScalar("b", &b, "child stat");
    parent.addChild(&child);

    a += 5;
    b += 7;
    std::string dump = parent.dump();
    EXPECT_NE(dump.find("core.a"), std::string::npos);
    EXPECT_NE(dump.find("core.cache.b"), std::string::npos);

    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Group, CsvExport)
{
    StatGroup parent("core");
    StatGroup child("cache");
    Scalar hits;
    Average lat;
    parent.addScalar("hits", &hits, "x");
    child.addAverage("latency", &lat, "y");
    parent.addChild(&child);
    hits += 3;
    lat.sample(2.0);
    lat.sample(4.0);
    std::string csv = parent.dumpCsv();
    EXPECT_NE(csv.find("core.hits,3"), std::string::npos);
    EXPECT_NE(csv.find("core.cache.latency,3"), std::string::npos);
}

TEST(GroupDeathTest, MissingStatPanics)
{
    StatGroup group("g");
    EXPECT_DEATH(group.scalarValue("nope"), "no scalar stat");
    EXPECT_DEATH(group.formulaValue("nope"), "no formula stat");
}

} // namespace
} // namespace cpe::stats
