/**
 * @file
 * The degenerate-schedule proof: a run with `warmup_insts` set — now
 * implemented as a two-phase (DetailedWarmup, DetailedMeasure)
 * schedule — must reproduce the pre-refactor warm-up semantics byte
 * for byte.  The committed golden under tests/golden/ was generated
 * against the monolithic warm-up special case; every artifact of a
 * warmed run (headline numbers, the full stats dump and JSON, the
 * event trace, the interval timeseries, the stall profile, and whole
 * sweep-grid documents, serial and parallel) is pinned against it.
 * Regenerate with CPE_REGEN_GOLDEN=1 only for an intentional,
 * explained change.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/port_config.hh"
#include "obs/tracer.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/json.hh"

#ifndef CPE_GOLDEN_DIR
#error "CPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace cpe::sim {
namespace {

/** FNV-1a over the raw bytes: artifacts too big to commit verbatim
 *  (the trace, the timeseries) are pinned by hash + length instead. */
std::string
fnv1a(const std::string &text)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    std::ostringstream out;
    out << std::hex << hash;
    return out.str();
}

SimConfig
warmConfig(const std::string &workload, std::uint64_t warmup_insts,
           const std::string &label)
{
    SimConfig config = SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        core::PortTechConfig::singlePortAllTechniques();
    config.warmupInsts = warmup_insts;
    config.label = label;
    return config;
}

/** The warm-up boundary must land mid-stream so the proof covers a
 *  boundary that actually fires: half of the full run's commits. */
std::uint64_t
midstreamWarmup(const std::string &workload)
{
    SimResult full = simulate(warmConfig(workload, 0, "full"));
    EXPECT_GT(full.insts, 4u) << workload;
    return full.insts / 2;
}

/** Every artifact of one fully-observed warmed run, as a stable JSON
 *  document (small members verbatim, bulky ones by hash + length). */
Json
degenerateRunDoc()
{
    std::uint64_t warmup = midstreamWarmup("compress");

    obs::StringTraceSink sink;
    SimConfig config = warmConfig("compress", warmup, "warm");
    config.obs.traceSink = &sink;
    config.obs.sampleCycles = 2000;
    config.obs.profileTop = 5;
    SimResult result = simulate(config);

    std::size_t trace_lines = 0;
    for (char c : sink.text())
        trace_lines += c == '\n';

    Json doc = Json::object();
    doc["workload"] = "compress";
    doc["warmup_insts"] = warmup;
    doc["cycles"] = result.cycles;
    doc["insts"] = result.insts;
    doc["ipc"] = result.ipc;
    doc["port_utilization"] = result.portUtilization;
    doc["l1d_miss_rate"] = result.l1dMissRate;
    doc["lb_hit_rate"] = result.lineBufferHitRate;
    doc["sb_stores_per_drain"] = result.sbStoresPerDrain;
    doc["load_port_fraction"] = result.loadPortFraction;
    doc["cond_accuracy"] = result.condAccuracy;
    doc["store_commit_stalls"] = result.storeCommitStalls;
    doc["stats"] = Json::parse(result.statsJson, "stats");
    doc["stats_dump_fnv"] = fnv1a(result.statsDump);
    doc["profile_fnv"] = fnv1a(result.profileJson);
    doc["timeseries_fnv"] = fnv1a(result.timeseriesJson);
    doc["trace_fnv"] = fnv1a(sink.text());
    doc["trace_lines"] = static_cast<std::uint64_t>(trace_lines);
    return doc;
}

/** A warmed sweep grid (full and warmed columns over two workloads). */
std::vector<SimConfig>
degenerateGrid()
{
    std::vector<SimConfig> configs;
    for (const std::string workload : {"copy", "compress"}) {
        configs.push_back(warmConfig(workload, 0, "full"));
        configs.push_back(
            warmConfig(workload, midstreamWarmup(workload), "warm"));
    }
    return configs;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(CPE_GOLDEN_DIR) + "/" + name;
}

/** Compare @p doc against the committed golden (or regenerate it). */
void
expectMatchesGolden(const Json &doc, const std::string &name)
{
    const std::string path = goldenPath(name);
    const std::string text = doc.dump(2) + "\n";

    if (std::getenv("CPE_REGEN_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << text;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (generate with CPE_REGEN_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), text)
        << "warmed-run artifacts diverged from the pre-refactor "
           "golden; a degenerate two-phase schedule must be "
           "byte-identical to the old warmupInsts special case";
}

TEST(SampledDifferential, DegenerateWarmupMatchesGolden)
{
    expectMatchesGolden(degenerateRunDoc(), "degenerate_warmup.json");
}

TEST(SampledDifferential, DegenerateSweepSerialMatchesParallel)
{
    std::vector<SimConfig> configs = degenerateGrid();
    Json serial = SweepRunner(1).runGrid(configs).toJson();
    Json parallel = SweepRunner(4).runGrid(configs).toJson();
    EXPECT_EQ(serial.dump(2), parallel.dump(2));
    expectMatchesGolden(serial, "degenerate_warmup_grid.json");
}

} // namespace
} // namespace cpe::sim
