/**
 * @file
 * Differential tests for the observability layer: tracing and interval
 * sampling are pure observers, so turning them on must not change a
 * single measured number.  Each seed workload runs twice — obs off and
 * obs on — and every SimResult field plus the final stats JSON must be
 * bit-identical; a parallel sweep sharing one sink must likewise render
 * a byte-identical grid document.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/tracer.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/json.hh"

namespace cpe::sim {
namespace {

SimConfig
seedConfig(const std::string &workload)
{
    SimConfig config = SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        core::PortTechConfig::singlePortAllTechniques();
    return config;
}

/** Compare every measured field of two results, reporting @p what. */
void
expectIdentical(const SimResult &off, const SimResult &on,
                const std::string &what)
{
    EXPECT_EQ(off.cycles, on.cycles) << what;
    EXPECT_EQ(off.insts, on.insts) << what;
    EXPECT_EQ(off.ipc, on.ipc) << what;
    EXPECT_EQ(off.portUtilization, on.portUtilization) << what;
    EXPECT_EQ(off.l1dMissRate, on.l1dMissRate) << what;
    EXPECT_EQ(off.lineBufferHitRate, on.lineBufferHitRate) << what;
    EXPECT_EQ(off.sbStoresPerDrain, on.sbStoresPerDrain) << what;
    EXPECT_EQ(off.loadPortFraction, on.loadPortFraction) << what;
    EXPECT_EQ(off.condAccuracy, on.condAccuracy) << what;
    EXPECT_EQ(off.storeCommitStalls, on.storeCommitStalls) << what;
    EXPECT_EQ(off.statsDump, on.statsDump) << what;
    EXPECT_EQ(off.statsJson, on.statsJson) << what;
}

TEST(ObsDifferential, TracingDoesNotPerturbResults)
{
    for (const std::string workload : {"copy", "crc", "saxpy"}) {
        SimResult off = simulate(seedConfig(workload));

        obs::StringTraceSink sink;
        SimConfig traced = seedConfig(workload);
        traced.obs.traceSink = &sink;
        traced.obs.sampleCycles = 5000;
        SimResult on = simulate(traced);

        expectIdentical(off, on, workload);
        EXPECT_TRUE(off.timeseriesJson.empty()) << workload;
        EXPECT_FALSE(on.timeseriesJson.empty()) << workload;
        EXPECT_FALSE(sink.text().empty()) << workload;
    }
}

TEST(ObsDifferential, TraceIsValidJsonl)
{
    obs::StringTraceSink sink;
    SimConfig config = seedConfig("copy");
    config.obs.traceSink = &sink;
    config.obs.sampleCycles = 2000;
    simulate(config);

    std::istringstream lines(sink.text());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        Json parsed = Json::parse(line, "trace line");
        EXPECT_TRUE(parsed.find("t")) << line;
        EXPECT_TRUE(parsed.find("r")) << line;
        ++count;
    }
    EXPECT_GT(count, 2u);  // run_begin + at least one event + run_end
}

TEST(ObsDifferential, RerunWithTracingIsDeterministic)
{
    obs::StringTraceSink first_sink;
    SimConfig config = seedConfig("copy");
    config.obs.traceSink = &first_sink;
    simulate(config);

    obs::StringTraceSink second_sink;
    config.obs.traceSink = &second_sink;
    simulate(config);

    EXPECT_EQ(first_sink.text(), second_sink.text());
}

TEST(ObsDifferential, ParallelSweepStaysByteIdentical)
{
    std::vector<SimConfig> plain;
    std::vector<SimConfig> traced;
    obs::StringTraceSink sink;
    for (const std::string workload : {"copy", "crc"}) {
        for (bool dual : {false, true}) {
            SimConfig config = seedConfig(workload);
            if (dual)
                config.core.dcache.tech =
                    core::PortTechConfig::dualPortBase();
            config.label = dual ? "dual" : "techniques";
            plain.push_back(config);
            config.obs.traceSink = &sink;
            config.obs.sampleCycles = 4000;
            traced.push_back(config);
        }
    }

    SweepRunner runner;
    std::string off = runner.runGrid(plain).toJson().dump(2);
    // Strip the traced grid's per-run timeseries before comparing: it
    // is the one intentional addition; everything else must match byte
    // for byte.
    Json with = runner.runGrid(traced).toJson();
    Json stripped = Json::object();
    for (const auto &[key, value] : with.members()) {
        if (key != "runs") {
            stripped[key] = value;
            continue;
        }
        Json runs = Json::array();
        for (const auto &run : value.items()) {
            ASSERT_TRUE(run.find("timeseries"));
            Json copy = Json::object();
            for (const auto &[field, field_value] : run.members())
                if (field != "timeseries")
                    copy[field] = field_value;
            runs.push(std::move(copy));
        }
        stripped[key] = std::move(runs);
    }
    EXPECT_EQ(off, stripped.dump(2));

    // Four runs interleaved into one sink: every line still parses and
    // carries one of four run ids.
    std::istringstream lines(sink.text());
    std::string line;
    unsigned begins = 0;
    unsigned ends = 0;
    while (std::getline(lines, line)) {
        Json parsed = Json::parse(line, "sweep trace line");
        std::uint64_t run_id =
            static_cast<std::uint64_t>(parsed.at("r").asNumber());
        EXPECT_LT(run_id, 4u);
        const std::string &type = parsed.at("t").asString();
        if (type == "run_begin")
            ++begins;
        if (type == "run_end")
            ++ends;
    }
    EXPECT_EQ(begins, 4u);
    EXPECT_EQ(ends, 4u);
}

} // namespace
} // namespace cpe::sim
