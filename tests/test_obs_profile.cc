/**
 * @file
 * Differential tests for the stall-attribution profiler: profiling is
 * a pure observer, so enabling it must not change a single measured
 * number, and because every hook sits beside the aggregate scalar it
 * attributes, the per-PC sums must equal the StatGroup totals
 * *exactly* — not approximately.  Both properties are held for serial
 * runs, warm-up runs, and a parallel sweep.
 */

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>

#include "obs/profiler.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/json.hh"

namespace cpe::sim {
namespace {

/** Large enough that toJson(top) reports every active PC bucket. */
constexpr unsigned kAllPcs = 1u << 16;

SimConfig
profiledConfig(const std::string &workload)
{
    SimConfig config = SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        core::PortTechConfig::singlePortAllTechniques();
    config.obs.profileTop = kAllPcs;
    return config;
}

std::uint64_t
num(const Json &object, const char *name)
{
    const Json *value = object.find(name);
    return value ? static_cast<std::uint64_t>(value->asNumber()) : 0;
}

/** Walk a nested stats path, asserting every hop exists. */
const Json &
statsAt(const Json &stats, std::initializer_list<const char *> path)
{
    const Json *node = &stats;
    for (const char *hop : path)
        node = &node->at(hop, "stats json");
    return *node;
}

std::uint64_t
arraySum(const Json &values)
{
    std::uint64_t sum = 0;
    for (const Json &value : values.items())
        sum += static_cast<std::uint64_t>(value.asNumber());
    return sum;
}

/**
 * The heart of the differential check: every counter the profiler
 * attributes per PC must sum to the matching aggregate StatGroup
 * scalar from the same run.
 */
void
expectTotalsMatchStats(const SimResult &result, const std::string &what)
{
    ASSERT_FALSE(result.profileJson.empty()) << what;
    Json profile = Json::parse(result.profileJson, "profile json");
    Json stats = Json::parse(result.statsJson, "stats json");
    const Json &totals = profile.at("totals", "profile json");
    const Json &dcache = statsAt(stats, {"core", "dcache_unit"});

    const Json &dports = statsAt(dcache, {"dports"});
    EXPECT_EQ(num(totals, "port_grants"), num(dports, "grants")) << what;
    EXPECT_EQ(num(totals, "port_conflicts"), num(dports, "rejections"))
        << what;

    EXPECT_EQ(num(totals, "sb_full_stalls"),
              num(statsAt(dcache, {"store_buffer"}), "full_rejects"))
        << what;

    const Json &lbs = statsAt(dcache, {"line_buffers"});
    EXPECT_EQ(num(totals, "lb_lookups"), num(lbs, "lookups")) << what;
    EXPECT_EQ(num(totals, "lb_hits"), num(lbs, "hits")) << what;

    EXPECT_EQ(num(totals, "mshr_allocs"),
              num(statsAt(dcache, {"l1d_mshrs"}), "allocations"))
        << what;
    EXPECT_EQ(num(totals, "mshr_waits"), num(dcache, "load_reject_mshr"))
        << what;
    EXPECT_EQ(num(totals, "partial_stalls"),
              num(dcache, "load_reject_partial"))
        << what;

    // Load outcomes, per source and in total.
    EXPECT_EQ(num(totals, "sb_fwd"), num(dcache, "loads_sb_fwd")) << what;
    EXPECT_EQ(num(totals, "lb_served"), num(dcache, "loads_line_buf"))
        << what;
    EXPECT_EQ(num(totals, "cache_hits"), num(dcache, "loads_cache_hit"))
        << what;
    EXPECT_EQ(num(totals, "misses"), num(dcache, "loads_miss")) << what;
    EXPECT_EQ(num(totals, "miss_merged"),
              num(dcache, "loads_miss_merged"))
        << what;
    EXPECT_EQ(num(totals, "loads"),
              num(dcache, "loads_sb_fwd") + num(dcache, "loads_line_buf") +
                  num(dcache, "loads_cache_hit") +
                  num(dcache, "loads_miss") +
                  num(dcache, "loads_miss_merged"))
        << what;
    EXPECT_EQ(num(totals, "stores"), num(dcache, "stores_buffered") +
                                         num(dcache, "stores_direct"))
        << what;

    // Commit-side attribution.
    const Json &core_stats = statsAt(stats, {"core"});
    EXPECT_EQ(num(totals, "commit_stall_head"),
              num(core_stats, "commit_blocked_cycles"))
        << what;
    EXPECT_EQ(num(totals, "commit_stall_store"),
              num(core_stats, "store_commit_stalls"))
        << what;
    EXPECT_EQ(num(totals, "rob_empty_cycles"),
              num(core_stats, "rob_empty_cycles"))
        << what;

    // The per-set heatmap is the L1D's own accounting, redistributed.
    const Json &l1d = statsAt(dcache, {"l1d"});
    const Json &sets = profile.at("sets", "profile json");
    EXPECT_EQ(arraySum(sets.at("accesses", "profile json")),
              num(l1d, "hits") + num(l1d, "misses"))
        << what;
    EXPECT_EQ(arraySum(sets.at("misses", "profile json")),
              num(l1d, "misses"))
        << what;
    EXPECT_EQ(arraySum(sets.at("evictions", "profile json")),
              num(l1d, "evictions"))
        << what;

    // With top_n covering every bucket, the reported per-PC rows must
    // themselves column-sum back to the totals line.
    ASSERT_LE(num(totals, "pcs"), static_cast<std::uint64_t>(kAllPcs))
        << what;
    const Json &pcs = profile.at("pcs", "profile json");
    EXPECT_EQ(pcs.items().size(), num(totals, "pcs")) << what;
    for (const char *column :
         {"loads", "stores", "port_grants", "port_conflicts",
          "mshr_allocs", "stall_cycles"}) {
        std::uint64_t sum = 0;
        for (const Json &entry : pcs.items())
            sum += num(entry, column);
        EXPECT_EQ(sum, num(totals, column)) << what << ": " << column;
    }
}

TEST(ObsProfile, PerPcSumsMatchAggregateTotals)
{
    for (const std::string workload : {"copy", "crc", "saxpy"}) {
        SimResult result = simulate(profiledConfig(workload));
        expectTotalsMatchStats(result, workload);
    }
}

TEST(ObsProfile, WarmupResetKeepsAttributionAligned)
{
    // The profiler must reset with StatGroup::resetAll() at the
    // warm-up boundary, or every identity above drifts by the
    // warm-up period's counts.
    SimConfig config = profiledConfig("copy");
    config.warmupInsts = 2000;
    SimResult result = simulate(config);
    EXPECT_LT(result.insts, simulate(profiledConfig("copy")).insts);
    expectTotalsMatchStats(result, "copy+warmup");
}

TEST(ObsProfile, ProfilingDoesNotPerturbResults)
{
    for (const std::string workload : {"copy", "crc"}) {
        SimConfig plain = profiledConfig(workload);
        plain.obs.profileTop = 0;
        SimResult off = simulate(plain);
        SimResult on = simulate(profiledConfig(workload));

        EXPECT_EQ(off.cycles, on.cycles) << workload;
        EXPECT_EQ(off.insts, on.insts) << workload;
        EXPECT_EQ(off.ipc, on.ipc) << workload;
        EXPECT_EQ(off.portUtilization, on.portUtilization) << workload;
        EXPECT_EQ(off.l1dMissRate, on.l1dMissRate) << workload;
        EXPECT_EQ(off.lineBufferHitRate, on.lineBufferHitRate)
            << workload;
        EXPECT_EQ(off.sbStoresPerDrain, on.sbStoresPerDrain) << workload;
        EXPECT_EQ(off.loadPortFraction, on.loadPortFraction) << workload;
        EXPECT_EQ(off.condAccuracy, on.condAccuracy) << workload;
        EXPECT_EQ(off.storeCommitStalls, on.storeCommitStalls)
            << workload;
        EXPECT_EQ(off.statsDump, on.statsDump) << workload;
        EXPECT_EQ(off.statsJson, on.statsJson) << workload;
        EXPECT_TRUE(off.profileJson.empty()) << workload;
        EXPECT_FALSE(on.profileJson.empty()) << workload;
    }
}

TEST(ObsProfile, ProfileTableRendersEveryRowPlusTotals)
{
    SimResult result = simulate(profiledConfig("copy"));
    Json profile = Json::parse(result.profileJson, "profile json");
    std::string table = obs::profileTable(profile);
    EXPECT_NE(table.find("port_conf"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
    EXPECT_NE(table.find("0x"), std::string::npos);
}

TEST(ObsProfile, ParallelSweepStaysByteIdenticalModuloProfiles)
{
    std::vector<SimConfig> plain;
    std::vector<SimConfig> profiled;
    for (const std::string workload : {"copy", "crc"}) {
        for (bool dual : {false, true}) {
            SimConfig config = profiledConfig(workload);
            config.obs.profileTop = 0;
            if (dual)
                config.core.dcache.tech =
                    core::PortTechConfig::dualPortBase();
            config.label = dual ? "dual" : "techniques";
            plain.push_back(config);
            config.obs.profileTop = 8;
            profiled.push_back(config);
        }
    }

    SweepRunner runner;
    std::string off = runner.runGrid(plain).toJson().dump(2);
    // Strip the per-run profile member before comparing: it is the
    // one intentional addition; everything else must match byte for
    // byte even with the sweep's worker threads in play.
    Json with = runner.runGrid(profiled).toJson();
    Json stripped = Json::object();
    for (const auto &[key, value] : with.members()) {
        if (key != "runs") {
            stripped[key] = value;
            continue;
        }
        Json runs = Json::array();
        for (const auto &run : value.items()) {
            const Json *profile = run.find("profile");
            ASSERT_TRUE(profile);
            EXPECT_EQ(num(*profile, "top"), 8u);
            EXPECT_GT(num(profile->at("totals", "profile"), "pcs"), 0u);
            Json copy = Json::object();
            for (const auto &[field, field_value] : run.members())
                if (field != "profile")
                    copy[field] = field_value;
            runs.push(std::move(copy));
        }
        stripped[key] = std::move(runs);
    }
    EXPECT_EQ(off, stripped.dump(2));
}

} // namespace
} // namespace cpe::sim
