/**
 * @file
 * Experiment-registry tests: every registered experiment exposes a
 * well-formed primary grid (what the regression gate replays), and a
 * reduced-scale F5 run reproduces a sane headline ratio end to end.
 */

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/driver.hh"
#include "exp/registry.hh"
#include "workload/registry.hh"
#include "util/error.hh"

#include "expect_error.hh"

namespace cpe::exp {
namespace {

TEST(ExperimentRegistry, AllExperimentsRegistered)
{
    const std::vector<std::string> expected = {
        "T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5",
        "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13"};
    EXPECT_EQ(ExperimentRegistry::instance().ids(), expected);
}

TEST(ExperimentRegistry, LookupIsCaseExact)
{
    auto &registry = ExperimentRegistry::instance();
    EXPECT_TRUE(registry.has("F5"));
    EXPECT_FALSE(registry.has("F99"));
    EXPECT_EQ(registry.get("F5").id, "F5");
    const Experiment *found = registry.find("F99");
    EXPECT_EQ(found, nullptr);
}

TEST(ExperimentRegistryErrors, UnknownIdThrowsConfigError)
{
    // get() is the user-facing path (--run ids); its message lists
    // what is registered.
    CPE_EXPECT_THROW_MSG(ExperimentRegistry::instance().get("F99"),
                         ConfigError, "F5");
}

TEST(ExperimentRegistry, EveryExperimentHasAWellFormedPrimaryGrid)
{
    auto &workloads = workload::WorkloadRegistry::instance();
    std::set<std::string> seen_ids;
    for (const Experiment *experiment :
         ExperimentRegistry::instance().all()) {
        SCOPED_TRACE(experiment->id);
        EXPECT_TRUE(seen_ids.insert(experiment->id).second);
        EXPECT_FALSE(experiment->title.empty());
        ASSERT_TRUE(experiment->variants);
        ASSERT_TRUE(experiment->run);

        auto variants = experiment->variants();
        ASSERT_FALSE(variants.empty());
        std::set<std::string> labels;
        for (const auto &variant : variants) {
            EXPECT_FALSE(variant.label.empty());
            EXPECT_TRUE(labels.insert(variant.label).second)
                << "duplicate variant label " << variant.label;
        }
        // The baseline, when named, must be one of the grid's columns.
        if (!experiment->baseline.empty())
            EXPECT_TRUE(labels.count(experiment->baseline))
                << "baseline '" << experiment->baseline
                << "' is not a variant label";
        for (const auto &name : experiment->workloads)
            EXPECT_TRUE(workloads.has(name))
                << "unknown workload " << name;

        // The grid expands into runnable configs for the gate.
        auto configs =
            suiteConfigs(variants, reducedSuite());
        EXPECT_EQ(configs.size(),
                  variants.size() * reducedSuite().size());
    }
}

TEST(ExperimentRegistry, ReducedSuiteIsRunnable)
{
    // The gate's default workloads must exist and cover the three
    // workload classes (int, fp, mem).
    auto &registry = workload::WorkloadRegistry::instance();
    ASSERT_EQ(reducedSuite().size(), 3u);
    for (const auto &name : reducedSuite())
        EXPECT_TRUE(registry.has(name));
}

TEST(Experiments, ReducedF5RunProducesHeadline)
{
    const Experiment &f5 = ExperimentRegistry::instance().get("F5");
    std::ostringstream out;
    Context context(f5, out, reducedSuite());
    f5.run(context);

    // The rendered output still carries the paper's framing...
    EXPECT_NE(out.str().find("HEADLINE"), std::string::npos);
    EXPECT_NE(out.str().find("Performance relative to '2 ports'"),
              std::string::npos);

    // ...and the JSON document carries the machine-readable ratios.
    const Json &doc = context.doc();
    EXPECT_EQ(doc.at("experiment").asString(), "F5");
    const Json &grid = doc.at("grids").at("main");
    EXPECT_EQ(grid.at("workloads").items().size(), 3u);
    EXPECT_EQ(grid.at("configs").items().size(), 7u);

    double headline =
        doc.at("headlines").at("pct_of_dual_plain").asNumber();
    EXPECT_GT(headline, 0.0);
    EXPECT_LT(headline, 120.0);
}

} // namespace
} // namespace cpe::exp
