/**
 * @file
 * TraceCache tests: keying (timing-only variants share a capture,
 * any functional difference never does), single capture per group —
 * including under concurrent acquisition — LRU eviction that keeps
 * in-flight replays valid, and the on-disk spill (round trip, corrupt
 * entries falling back to live capture, failed captures never cached).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "func/executor.hh"
#include "func/trace_file.hh"
#include "sim/trace_cache.hh"
#include "util/error.hh"
#include "util/thread_pool.hh"
#include "workload/registry.hh"

#include "expect_error.hh"

namespace cpe::sim {
namespace {

SimConfig
cacheConfig(const std::string &workload)
{
    SimConfig config = SimConfig::defaults();
    config.workloadName = workload;
    return config;
}

/** A per-test spill directory under the gtest temp dir. */
struct TempDir
{
    std::string path;
    explicit TempDir(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(TraceCache, TimingOnlyVariantsShareAKey)
{
    SimConfig base = cacheConfig("copy");
    SimConfig timing = base;
    // Aggressive timing changes: none may change the committed path.
    timing.core.dcache.tech = core::PortTechConfig::dualPortBase();
    timing.core.fetch.fetchWidth = 1;
    timing.core.dcache.cache.sizeBytes *= 2;
    timing.label = "other";
    EXPECT_EQ(TraceCache::key(base), TraceCache::key(timing));
}

TEST(TraceCache, FunctionalKnobsNeverShareAKey)
{
    SimConfig base = cacheConfig("copy");

    SimConfig workload = base;
    workload.workloadName = "crc";
    EXPECT_NE(TraceCache::key(base), TraceCache::key(workload));

    SimConfig scale = base;
    scale.workload.scale += 1;
    EXPECT_NE(TraceCache::key(base), TraceCache::key(scale));

    SimConfig seed = base;
    seed.workload.seed += 1;
    EXPECT_NE(TraceCache::key(base), TraceCache::key(seed));

    SimConfig os = base;
    os.workload.osLevel += 1;
    EXPECT_NE(TraceCache::key(base), TraceCache::key(os));
}

TEST(TraceCache, CapturesOnceThenReplays)
{
    TraceCache cache;
    SimConfig config = cacheConfig("copy");

    auto first = cache.acquire(config);
    SimConfig variant = config;
    variant.core.dcache.tech = core::PortTechConfig::dualPortBase();
    auto second = cache.acquire(variant);

    EXPECT_EQ(first.get(), second.get()) << "one shared capture";
    TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.captures, 1u);
    EXPECT_EQ(stats.replays, 1u);
    EXPECT_EQ(stats.instsCaptured, first->size());
    EXPECT_EQ(stats.instsSkipped, first->size());

    // The capture is the exact committed stream a live executor emits.
    func::Executor golden(workload::WorkloadRegistry::instance().build(
        config.workloadName, config.workload));
    auto expected = func::recordTrace(golden, ~std::size_t{0});
    ASSERT_EQ(first->size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*first)[i].seq, expected[i].seq);
        EXPECT_EQ((*first)[i].pc, expected[i].pc);
        EXPECT_EQ((*first)[i].memAddr, expected[i].memAddr);
        EXPECT_EQ((*first)[i].nextPc, expected[i].nextPc);
        EXPECT_EQ((*first)[i].taken, expected[i].taken);
    }
}

TEST(TraceCache, EvictsLruButKeepsInFlightReplaysValid)
{
    // A 1-byte bound forces an eviction as soon as a second capture
    // lands; the MRU entry always survives.
    TraceCache cache("", 1);
    auto copy = cache.acquire(cacheConfig("copy"));
    std::size_t copy_size = copy->size();
    auto crc = cache.acquire(cacheConfig("crc"));

    TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.captures, 2u);
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_EQ(cache.residentCount(), 1u) << "only the MRU entry stays";

    // The evicted capture is still alive through our shared_ptr.
    EXPECT_EQ(copy->size(), copy_size);
    EXPECT_GT(copy->size(), 0u);

    // Re-acquiring the evicted workload re-captures (not a replay).
    cache.acquire(cacheConfig("copy"));
    EXPECT_EQ(cache.stats().captures, 3u);
}

TEST(TraceCache, ConcurrentAcquiresCaptureExactlyOnce)
{
    TraceCache cache;
    SimConfig config = cacheConfig("histogram");

    util::ThreadPool pool(4);
    std::vector<std::future<const func::CapturedTrace *>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(pool.submit(
            [&cache, config] { return cache.acquire(config).get(); }));

    std::vector<const func::CapturedTrace *> traces;
    for (auto &future : futures)
        traces.push_back(future.get());
    for (const auto *trace : traces)
        EXPECT_EQ(trace, traces[0]) << "all waiters share one capture";

    TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.captures, 1u) << "single-flight: one execution";
    EXPECT_EQ(stats.replays, 7u);
}

TEST(TraceCache, SpillsToDiskAndLoadsAcrossInstances)
{
    TempDir dir("cpe_trace_cache_spill/");
    SimConfig config = cacheConfig("copy");

    TraceCache writer(dir.path);
    auto captured = writer.acquire(config);
    EXPECT_EQ(writer.stats().captures, 1u);
    EXPECT_EQ(writer.stats().diskWrites, 1u);
    ASSERT_FALSE(writer.spillPath(config).empty());
    EXPECT_TRUE(std::filesystem::exists(writer.spillPath(config)));

    // A fresh cache (a later cpe_eval invocation) loads the spill
    // instead of re-executing the functional model.
    TraceCache reader(dir.path);
    auto loaded = reader.acquire(config);
    TraceCache::Stats stats = reader.stats();
    EXPECT_EQ(stats.captures, 0u) << "no functional execution";
    EXPECT_EQ(stats.diskLoads, 1u);
    EXPECT_EQ(stats.instsSkipped, loaded->size());
    ASSERT_EQ(loaded->size(), captured->size());
    for (std::size_t i = 0; i < loaded->size(); ++i) {
        EXPECT_EQ((*loaded)[i].pc, (*captured)[i].pc);
        EXPECT_EQ((*loaded)[i].memAddr, (*captured)[i].memAddr);
    }
}

TEST(TraceCache, CorruptSpillEntryFallsBackToLiveCapture)
{
    TempDir dir("cpe_trace_cache_corrupt/");
    SimConfig config = cacheConfig("copy");

    TraceCache cache(dir.path);
    std::filesystem::create_directories(dir.path);
    std::FILE *f = std::fopen(cache.spillPath(config).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a CPET trace", f);
    std::fclose(f);

    // The corrupt entry warns and the capture proceeds live — a bad
    // spill directory must never fail a run.
    auto trace = cache.acquire(config);
    EXPECT_GT(trace->size(), 0u);
    TraceCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.diskLoads, 0u);
    EXPECT_EQ(stats.captures, 1u);
}

TEST(TraceCache, FailedCapturesAreNotCached)
{
    TraceCache cache;
    SimConfig config = cacheConfig("no-such-workload");

    CPE_EXPECT_THROW_MSG(cache.acquire(config), WorkloadError,
                         "no-such-workload");
    EXPECT_EQ(cache.residentCount(), 0u);
    // The failure was not memoized: the next acquire retries from
    // scratch (and fails the same way, being deterministic).
    CPE_EXPECT_THROW_MSG(cache.acquire(config), WorkloadError,
                         "no-such-workload");
}

} // namespace
} // namespace cpe::sim
