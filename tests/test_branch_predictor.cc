/**
 * @file
 * Branch-predictor tests: 2-bit counter dynamics, gshare history,
 * BTB fill/replace, return-address stack, and accuracy on synthetic
 * branch streams.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "prog/builder.hh"

namespace cpe::cpu {
namespace {

using isa::Inst;
using isa::Opcode;

Inst
branch()
{
    Inst inst;
    inst.op = Opcode::BEQ;
    inst.rs1 = 1;
    inst.rs2 = 2;
    inst.imm = -16;
    return inst;
}

Inst
jal(RegIndex rd)
{
    Inst inst;
    inst.op = Opcode::JAL;
    inst.rd = rd;
    inst.imm = 64;
    return inst;
}

Inst
jalr(RegIndex rd, RegIndex rs1)
{
    Inst inst;
    inst.op = Opcode::JALR;
    inst.rd = rd;
    inst.rs1 = rs1;
    return inst;
}

BranchPredictorParams
bimodal()
{
    BranchPredictorParams params;
    params.kind = PredictorKind::Bimodal;
    return params;
}

TEST(Bpred, TwoBitCounterHysteresis)
{
    BranchPredictor bp(bimodal());
    Addr pc = 0x1000;
    Inst br = branch();

    // Initialized weakly not-taken.
    EXPECT_FALSE(bp.predict(pc, br).taken);
    bp.update(pc, br, true, pc - 16);
    EXPECT_TRUE(bp.predict(pc, br).taken);   // weakly taken
    bp.update(pc, br, true, pc - 16);        // strongly taken
    bp.update(pc, br, false, 0);             // back to weakly taken
    EXPECT_TRUE(bp.predict(pc, br).taken);   // hysteresis holds
    bp.update(pc, br, false, 0);
    EXPECT_FALSE(bp.predict(pc, br).taken);
}

TEST(Bpred, PcRelativeTargetAlwaysKnown)
{
    BranchPredictor bp(bimodal());
    auto pred = bp.predict(0x2000, branch());
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 0x2000u - 16);

    auto jpred = bp.predict(0x3000, jal(0));
    EXPECT_TRUE(jpred.taken);
    EXPECT_EQ(jpred.target, 0x3000u + 64);
}

TEST(Bpred, LoopBranchLearnedByBimodal)
{
    BranchPredictor bp(bimodal());
    Addr pc = 0x4000;
    Inst br = branch();
    // 10-iteration loop repeated: T T T ... T N pattern.
    unsigned mispredicts = 0;
    for (int rep = 0; rep < 20; ++rep) {
        for (int it = 0; it < 10; ++it) {
            bool taken = it != 9;
            auto pred = bp.predict(pc, br);
            if (pred.taken != taken)
                ++mispredicts;
            bp.update(pc, br, taken, pc - 16);
        }
    }
    // Bimodal settles to ~1 mispredict (the exit) per loop visit.
    EXPECT_LE(mispredicts, 2u + 20u);
    EXPECT_GE(mispredicts, 20u);  // the exit is always missed
}

TEST(Bpred, GShareLearnsAlternation)
{
    BranchPredictorParams params;
    params.kind = PredictorKind::GShare;
    params.historyBits = 8;
    BranchPredictor bp(params);
    Addr pc = 0x5000;
    Inst br = branch();
    // Strict alternation T N T N: bimodal oscillates, gshare learns.
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 400; ++i) {
        bool taken = (i % 2) == 0;
        auto pred = bp.predict(pc, br);
        if (i >= 200 && pred.taken != taken)
            ++late_mispredicts;
        bp.update(pc, br, taken, pc - 16);
    }
    EXPECT_LT(late_mispredicts, 5u);
}

TEST(Bpred, BtbLearnsIndirectTargets)
{
    BranchPredictor bp(bimodal());
    Addr pc = 0x6000;
    Inst ind = jalr(0, 5);  // indirect jump, not a return

    auto cold = bp.predict(pc, ind);
    EXPECT_TRUE(cold.taken);
    EXPECT_FALSE(cold.targetKnown);  // BTB cold

    bp.update(pc, ind, true, 0x8888);
    auto warm = bp.predict(pc, ind);
    EXPECT_TRUE(warm.targetKnown);
    EXPECT_EQ(warm.target, 0x8888u);

    // Target changes are re-learned.
    bp.update(pc, ind, true, 0x9999);
    EXPECT_EQ(bp.predict(pc, ind).target, 0x9999u);
}

TEST(Bpred, RasPredictsReturns)
{
    BranchPredictor bp(bimodal());
    Inst call = jal(prog::reg::ra);
    Inst ret = jalr(0, prog::reg::ra);

    // call at 0x1000 -> return should target 0x1004.
    bp.predict(0x1000, call);
    auto pred = bp.predict(0x2000, ret);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 0x1004u);

    // Nested calls unwind in LIFO order.
    bp.predict(0x1000, call);
    bp.predict(0x1100, call);
    EXPECT_EQ(bp.predict(0x3000, ret).target, 0x1104u);
    EXPECT_EQ(bp.predict(0x3000, ret).target, 0x1004u);
}

TEST(Bpred, CorrectnessJudgement)
{
    BranchPredictor::Prediction pred;
    pred.taken = false;
    // Not-taken prediction, not-taken outcome.
    EXPECT_TRUE(BranchPredictor::correct(pred, false, 0, 0x1004));
    // Not-taken prediction, taken outcome.
    EXPECT_FALSE(BranchPredictor::correct(pred, true, 0x2000, 0x1004));

    pred.taken = true;
    pred.target = 0x2000;
    pred.targetKnown = true;
    EXPECT_TRUE(BranchPredictor::correct(pred, true, 0x2000, 0x1004));
    EXPECT_FALSE(BranchPredictor::correct(pred, true, 0x3000, 0x1004));
    EXPECT_FALSE(BranchPredictor::correct(pred, false, 0, 0x1004));

    pred.targetKnown = false;
    EXPECT_FALSE(BranchPredictor::correct(pred, true, 0x2000, 0x1004));
}

TEST(Bpred, LocalLearnsPerBranchPatterns)
{
    // Two branches at different PCs with different periodic patterns;
    // a local predictor learns both without cross-interference.
    BranchPredictorParams params;
    params.kind = PredictorKind::Local;
    params.historyBits = 8;
    BranchPredictor bp(params);
    Inst br = branch();
    unsigned late_mispredicts = 0;
    for (int i = 0; i < 600; ++i) {
        bool taken_a = (i % 3) != 2;   // T T N pattern at 0x7000
        bool taken_b = (i % 2) == 0;   // T N pattern at 0x8000
        auto pa = bp.predict(0x7000, br);
        if (i >= 300 && pa.taken != taken_a)
            ++late_mispredicts;
        bp.update(0x7000, br, taken_a, 0x7000 - 16);
        auto pb = bp.predict(0x8000, br);
        if (i >= 300 && pb.taken != taken_b)
            ++late_mispredicts;
        bp.update(0x8000, br, taken_b, 0x8000 - 16);
    }
    EXPECT_LT(late_mispredicts, 10u);
}

TEST(Bpred, AlwaysNotTakenBaseline)
{
    BranchPredictorParams params;
    params.kind = PredictorKind::AlwaysNotTaken;
    BranchPredictor bp(params);
    Inst br = branch();
    bp.update(0x1000, br, true, 0x900);
    bp.update(0x1000, br, true, 0x900);
    EXPECT_FALSE(bp.predict(0x1000, br).taken);
}

} // namespace
} // namespace cpe::cpu
