/**
 * @file
 * ISA-layer tests: opcode classification, operand queries, binary
 * encode/decode round-trips (directed + property-based), and the
 * disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "isa/isa.hh"
#include "util/random.hh"

namespace cpe::isa {
namespace {

TEST(IsaClass, LoadsAndStores)
{
    EXPECT_TRUE(isLoad(Opcode::LB));
    EXPECT_TRUE(isLoad(Opcode::LWU));
    EXPECT_TRUE(isLoad(Opcode::FLD));
    EXPECT_FALSE(isLoad(Opcode::SD));
    EXPECT_TRUE(isStore(Opcode::SB));
    EXPECT_TRUE(isStore(Opcode::FSD));
    EXPECT_FALSE(isStore(Opcode::LD));
    EXPECT_TRUE(isMem(Opcode::LH));
    EXPECT_TRUE(isMem(Opcode::SW));
    EXPECT_FALSE(isMem(Opcode::ADD));
}

TEST(IsaClass, Control)
{
    EXPECT_TRUE(isControl(Opcode::BEQ));
    EXPECT_TRUE(isControl(Opcode::JAL));
    EXPECT_TRUE(isControl(Opcode::JALR));
    EXPECT_FALSE(isControl(Opcode::ADD));
    EXPECT_TRUE(isCondBranch(Opcode::BGEU));
    EXPECT_FALSE(isCondBranch(Opcode::JAL));
}

TEST(IsaClass, EveryOpcodeClassifies)
{
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NumOpcodes); ++op) {
        // classOf and opcodeName must not panic for any valid opcode.
        InstClass cls = classOf(static_cast<Opcode>(op));
        EXPECT_LE(static_cast<unsigned>(cls),
                  static_cast<unsigned>(InstClass::System));
        EXPECT_NE(opcodeName(static_cast<Opcode>(op)), nullptr);
    }
}

TEST(IsaMem, AccessBytes)
{
    EXPECT_EQ(memBytes(Opcode::LB), 1u);
    EXPECT_EQ(memBytes(Opcode::LHU), 2u);
    EXPECT_EQ(memBytes(Opcode::SW), 4u);
    EXPECT_EQ(memBytes(Opcode::FSD), 8u);
    EXPECT_EQ(memBytes(Opcode::LD), 8u);
}

TEST(IsaMem, SignednessOfLoads)
{
    EXPECT_TRUE(loadSigned(Opcode::LB));
    EXPECT_TRUE(loadSigned(Opcode::LW));
    EXPECT_FALSE(loadSigned(Opcode::LBU));
    EXPECT_FALSE(loadSigned(Opcode::LD));
    EXPECT_FALSE(loadSigned(Opcode::FLD));
}

TEST(IsaRegs, Names)
{
    EXPECT_EQ(regName(0), "x0");
    EXPECT_EQ(regName(31), "x31");
    EXPECT_EQ(regName(FpBase), "f0");
    EXPECT_EQ(regName(FpBase + 31), "f31");
    EXPECT_EQ(regName(NoReg), "-");
}

TEST(IsaRegs, SrcRegsPerFormat)
{
    RegIndex srcs[2];

    Inst add{Opcode::ADD, 3, 4, 5, 0};
    EXPECT_EQ(srcRegs(add, srcs), 2u);
    EXPECT_EQ(srcs[0], 4);
    EXPECT_EQ(srcs[1], 5);

    // x0 sources are dropped.
    Inst addz{Opcode::ADD, 3, 0, 5, 0};
    EXPECT_EQ(srcRegs(addz, srcs), 1u);
    EXPECT_EQ(srcs[0], 5);

    // Duplicate sources are de-duplicated.
    Inst dup{Opcode::ADD, 3, 7, 7, 0};
    EXPECT_EQ(srcRegs(dup, srcs), 1u);

    Inst load{Opcode::LD, 3, 4, NoReg, 16};
    EXPECT_EQ(srcRegs(load, srcs), 1u);
    EXPECT_EQ(srcs[0], 4);

    Inst store{Opcode::SD, NoReg, 4, 9, 16};
    EXPECT_EQ(srcRegs(store, srcs), 2u);

    Inst lui{Opcode::LUI, 3, NoReg, NoReg, 5};
    EXPECT_EQ(srcRegs(lui, srcs), 0u);

    Inst halt{Opcode::HALT, NoReg, NoReg, NoReg, 0};
    EXPECT_EQ(srcRegs(halt, srcs), 0u);
}

TEST(IsaRegs, DestReg)
{
    EXPECT_EQ(destReg(Inst{Opcode::ADD, 3, 4, 5, 0}), 3);
    EXPECT_EQ(destReg(Inst{Opcode::ADD, 0, 4, 5, 0}), NoReg); // x0 sink
    EXPECT_EQ(destReg(Inst{Opcode::SD, NoReg, 4, 5, 0}), NoReg);
    EXPECT_EQ(destReg(Inst{Opcode::BEQ, NoReg, 4, 5, 8}), NoReg);
    EXPECT_EQ(destReg(Inst{Opcode::JAL, 1, NoReg, NoReg, 8}), 1);
}

TEST(Encoding, RoundTripDirected)
{
    std::vector<Inst> cases = {
        {Opcode::ADD, 1, 2, 3, 0},
        {Opcode::ADDI, 1, 2, NoReg, -2048},
        {Opcode::ADDI, 1, 2, NoReg, 2047},
        {Opcode::LUI, 5, NoReg, NoReg, -131072},
        {Opcode::LUI, 5, NoReg, NoReg, 131071},
        {Opcode::LD, 9, 10, NoReg, 1024},
        {Opcode::SD, NoReg, 10, 9, -8},
        {Opcode::BEQ, NoReg, 4, 5, -2048},
        {Opcode::JAL, 1, NoReg, NoReg, 4096},
        {Opcode::JALR, 0, 1, NoReg, 0},
        {Opcode::FADD, static_cast<RegIndex>(FpBase + 1),
         static_cast<RegIndex>(FpBase + 2),
         static_cast<RegIndex>(FpBase + 3), 0},
        {Opcode::HALT, NoReg, NoReg, NoReg, 0},
        {Opcode::EMODE, NoReg, NoReg, NoReg, 0},
    };
    for (const auto &inst : cases) {
        auto enc = encode(inst);
        ASSERT_TRUE(enc.ok()) << disassemble(inst) << ": " << enc.error;
        auto dec = decode(enc.word);
        ASSERT_TRUE(dec.has_value()) << disassemble(inst);
        EXPECT_EQ(*dec, inst) << disassemble(inst) << " vs "
                              << disassemble(*dec);
    }
}

TEST(Encoding, RejectsOutOfRangeImmediates)
{
    EXPECT_FALSE(encode(Inst{Opcode::ADDI, 1, 2, NoReg, 2048}).ok());
    EXPECT_FALSE(encode(Inst{Opcode::ADDI, 1, 2, NoReg, -2049}).ok());
    EXPECT_FALSE(encode(Inst{Opcode::JAL, 1, NoReg, NoReg, 1 << 17}).ok());
    EXPECT_TRUE(
        encode(Inst{Opcode::JAL, 1, NoReg, NoReg, (1 << 17) - 4}).ok());
}

TEST(Encoding, RejectsMalformedWords)
{
    // Unknown opcode byte.
    std::uint32_t bad_op =
        static_cast<std::uint32_t>(Opcode::NumOpcodes) << 24;
    EXPECT_FALSE(decode(bad_op).has_value());
    EXPECT_FALSE(decode(0xff000000u).has_value());

    // R-format with nonzero must-be-zero low bits.
    auto enc = encode(Inst{Opcode::ADD, 1, 2, 3, 0});
    ASSERT_TRUE(enc.ok());
    EXPECT_FALSE(decode(enc.word | 0x1).has_value());

    // HALT with a nonzero register field.
    auto halt = encode(Inst{Opcode::HALT, NoReg, NoReg, NoReg, 0});
    ASSERT_TRUE(halt.ok());
    EXPECT_FALSE(decode(halt.word | (5u << 18)).has_value());
}

/** Property: any encodable random instruction round-trips exactly. */
class EncodingRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EncodingRoundTrip, RandomInstructions)
{
    Rng rng(GetParam());
    unsigned encoded = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        Inst inst;
        inst.op = static_cast<Opcode>(
            rng.below(static_cast<std::uint64_t>(Opcode::NumOpcodes)));
        inst.rd = static_cast<RegIndex>(rng.below(NumArchRegs));
        inst.rs1 = static_cast<RegIndex>(rng.below(NumArchRegs));
        inst.rs2 = static_cast<RegIndex>(rng.below(NumArchRegs));
        inst.imm = isJFormat(inst.op) ? rng.range(-(1 << 17), (1 << 17) - 1)
                                      : rng.range(-2048, 2047);

        auto enc = encode(inst);
        if (!enc.ok())
            continue;  // operand constellation not valid for format
        ++encoded;
        auto dec = decode(enc.word);
        ASSERT_TRUE(dec.has_value());
        // Decode normalizes unused operand fields; re-encoding must
        // reproduce the identical word (canonical-form property).
        auto enc2 = encode(*dec);
        ASSERT_TRUE(enc2.ok());
        EXPECT_EQ(enc.word, enc2.word) << disassemble(inst);
    }
    EXPECT_GT(encoded, 500u);  // the generator must exercise encode
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 1996));

TEST(Disasm, Readable)
{
    EXPECT_EQ(disassemble(Inst{Opcode::ADD, 3, 4, 5, 0}), "add x3, x4, x5");
    EXPECT_EQ(disassemble(Inst{Opcode::ADDI, 3, 4, NoReg, -5}),
              "addi x3, x4, -5");
    EXPECT_EQ(disassemble(Inst{Opcode::LD, 3, 4, NoReg, 16}),
              "ld x3, 16(x4)");
    EXPECT_EQ(disassemble(Inst{Opcode::SD, NoReg, 4, 3, 8}),
              "sd x3, 8(x4)");
    EXPECT_EQ(disassemble(Inst{Opcode::BEQ, NoReg, 1, 2, 8}),
              "beq x1, x2, 8");
    EXPECT_EQ(disassemble(Inst{Opcode::BEQ, NoReg, 1, 2, 8}, 0x1000),
              "beq x1, x2, 0x1008");
    EXPECT_EQ(disassemble(Inst{Opcode::HALT, NoReg, NoReg, NoReg, 0}),
              "halt");
    EXPECT_EQ(
        disassemble(Inst{Opcode::FADD, static_cast<RegIndex>(FpBase),
                         static_cast<RegIndex>(FpBase + 1),
                         static_cast<RegIndex>(FpBase + 2), 0}),
        "fadd f0, f1, f2");
}

} // namespace
} // namespace cpe::isa
