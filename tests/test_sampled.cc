/**
 * @file
 * Unit tests for the sampled-simulation building blocks: the
 * SampleScheduler's phase plans, the Student-t IPC estimator, the
 * StitchedTraceSource hand-back contract, the warm-only update paths,
 * statistics snapshot/restore, the [sample] configuration rules, and
 * an end-to-end periodic sampled run checked for determinism and a
 * sane error against the full-detail result.  (Bit-identity of the
 * degenerate plan is covered by test_sampled_differential.cc.)
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "mem/cache.hh"
#include "sim/phase_engine.hh"
#include "sim/sample_scheduler.hh"
#include "sim/simulator.hh"
#include "sim/trace_cache.hh"
#include "stats/estimator.hh"
#include "stats/stats.hh"
#include "util/error.hh"
#include "util/logging.hh"

#include "expect_error.hh"

namespace cpe::sim {
namespace {

// --- SampleScheduler plans -------------------------------------------

TEST(SampleScheduler, DegenerateWithoutWarmupIsMeasureToEnd)
{
    SamplePlan plan = SampleScheduler::degenerate(0);
    EXPECT_FALSE(plan.sampled());
    ASSERT_EQ(plan.prologue.size(), 1u);
    EXPECT_EQ(plan.prologue[0].kind, PhaseKind::DetailedMeasure);
    EXPECT_EQ(plan.prologue[0].insts, 0u);
    EXPECT_TRUE(plan.cycle.empty());
}

TEST(SampleScheduler, DegenerateWithWarmupIsTwoPhases)
{
    SamplePlan plan = SampleScheduler::degenerate(5000);
    EXPECT_FALSE(plan.sampled());
    ASSERT_EQ(plan.prologue.size(), 2u);
    EXPECT_EQ(plan.prologue[0].kind, PhaseKind::DetailedWarmup);
    EXPECT_EQ(plan.prologue[0].insts, 5000u);
    EXPECT_EQ(plan.prologue[1].kind, PhaseKind::DetailedMeasure);
    EXPECT_EQ(plan.prologue[1].insts, 0u);
}

TEST(SampleScheduler, PeriodicCycleIsFastForwardWarmMeasure)
{
    SampleParams params;
    params.mode = SampleParams::Mode::Periodic;
    params.warmupInsts = 1000;
    params.measureInsts = 2000;
    params.periodInsts = 100'000;
    SamplePlan plan = SampleScheduler::plan(params, 0);
    EXPECT_TRUE(plan.sampled());
    EXPECT_TRUE(plan.prologue.empty());
    // Fast-forward leads so even the first measurement follows a long
    // functional-warming leg (a cold first sample would be an outlier
    // small-n runs cannot absorb).
    ASSERT_EQ(plan.cycle.size(), 3u);
    EXPECT_EQ(plan.cycle[0].kind, PhaseKind::FastForward);
    EXPECT_EQ(plan.cycle[0].insts, 97'000u);
    EXPECT_EQ(plan.cycle[1].kind, PhaseKind::DetailedWarmup);
    EXPECT_EQ(plan.cycle[1].insts, 1000u);
    EXPECT_EQ(plan.cycle[2].kind, PhaseKind::DetailedMeasure);
    EXPECT_EQ(plan.cycle[2].insts, 2000u);
}

TEST(SampleScheduler, PeriodEqualToDetailedLegDropsFastForward)
{
    SampleParams params;
    params.mode = SampleParams::Mode::Periodic;
    params.warmupInsts = 0;
    params.measureInsts = 3000;
    params.periodInsts = 3000;
    SamplePlan plan = SampleScheduler::plan(params, 0);
    ASSERT_EQ(plan.cycle.size(), 1u);
    EXPECT_EQ(plan.cycle[0].kind, PhaseKind::DetailedMeasure);
    EXPECT_EQ(plan.cycle[0].insts, 3000u);
}

TEST(SampleScheduler, FixedModeDividesTheStream)
{
    SampleParams params;
    params.mode = SampleParams::Mode::Fixed;
    params.warmupInsts = 1000;
    params.measureInsts = 2000;
    params.intervals = 10;
    SamplePlan plan = SampleScheduler::plan(params, 1'000'000);
    ASSERT_EQ(plan.cycle.size(), 3u);
    // period = 1M / 10 = 100k; FF leg = 100k - 3k, leading.
    EXPECT_EQ(plan.cycle[0].kind, PhaseKind::FastForward);
    EXPECT_EQ(plan.cycle[0].insts, 97'000u);
}

TEST(SampleScheduler, FixedModeNeedsAStreamLength)
{
    SampleParams params;
    params.mode = SampleParams::Mode::Fixed;
    CPE_EXPECT_THROW_MSG(SampleScheduler::plan(params, 0), ConfigError,
                         "known stream length");
}

TEST(SampleScheduler, PeriodShorterThanDetailedLegIsRejected)
{
    SampleParams params;
    params.mode = SampleParams::Mode::Periodic;
    params.warmupInsts = 1000;
    params.measureInsts = 2000;
    params.periodInsts = 2500;
    CPE_EXPECT_THROW_MSG(SampleScheduler::plan(params, 0), ConfigError,
                         "shorter than one detailed leg");
}

TEST(SampleScheduler, ModeNamesRoundTrip)
{
    EXPECT_EQ(SampleParams::parseMode("off"), SampleParams::Mode::Off);
    EXPECT_EQ(SampleParams::parseMode("periodic"),
              SampleParams::Mode::Periodic);
    EXPECT_EQ(SampleParams::parseMode("fixed"),
              SampleParams::Mode::Fixed);
    EXPECT_STREQ(SampleParams::modeName(SampleParams::Mode::Periodic),
                 "periodic");
    CPE_EXPECT_THROW_MSG(SampleParams::parseMode("sometimes"),
                         ConfigError, "not one of");
}

// --- Student-t estimator ---------------------------------------------

TEST(Estimator, CriticalValuesMatchTheTable)
{
    using stats::Estimator;
    EXPECT_DOUBLE_EQ(Estimator::tCritical(1, 0.95), 12.706);
    EXPECT_DOUBLE_EQ(Estimator::tCritical(10, 0.95), 2.228);
    EXPECT_DOUBLE_EQ(Estimator::tCritical(30, 0.99), 2.750);
    EXPECT_DOUBLE_EQ(Estimator::tCritical(120, 0.90), 1.658);
    // Untabulated dof snaps down (conservative, wider interval).
    EXPECT_DOUBLE_EQ(Estimator::tCritical(35, 0.95), 2.042);
    EXPECT_DOUBLE_EQ(Estimator::tCritical(100, 0.95), 2.000);
    // Far beyond the table: the normal limit.
    EXPECT_DOUBLE_EQ(Estimator::tCritical(1000, 0.95), 1.960);
    EXPECT_DOUBLE_EQ(Estimator::tCritical(0, 0.95), 0.0);
}

TEST(Estimator, WelfordMeanAndInterval)
{
    stats::Estimator est;
    est.add(1.0);
    est.add(2.0);
    est.add(3.0);
    stats::Estimate e = est.estimate(0.95);
    EXPECT_EQ(e.n, 3u);
    EXPECT_DOUBLE_EQ(e.mean, 2.0);
    EXPECT_DOUBLE_EQ(e.stddev, 1.0);
    EXPECT_NEAR(e.sem, 1.0 / std::sqrt(3.0), 1e-12);
    // t(dof=2, 95%) = 4.303.
    EXPECT_NEAR(e.halfWidth, 4.303 / std::sqrt(3.0), 1e-12);
    EXPECT_NEAR(e.ciLow, e.mean - e.halfWidth, 1e-12);
    EXPECT_NEAR(e.ciHigh, e.mean + e.halfWidth, 1e-12);
    EXPECT_NEAR(e.relErrorPct(), 100.0 * e.halfWidth / 2.0, 1e-12);
    EXPECT_TRUE(e.covers(2.0));
    EXPECT_FALSE(e.covers(100.0));
}

TEST(Estimator, FewerThanTwoSamplesCollapsesTheInterval)
{
    stats::Estimator est;
    est.add(1.5);
    stats::Estimate e = est.estimate(0.95);
    EXPECT_EQ(e.n, 1u);
    EXPECT_DOUBLE_EQ(e.ciLow, 1.5);
    EXPECT_DOUBLE_EQ(e.ciHigh, 1.5);
    EXPECT_DOUBLE_EQ(e.halfWidth, 0.0);
}

// --- StitchedTraceSource ---------------------------------------------

func::DynInst
rec(SeqNum seq)
{
    func::DynInst di;
    di.seq = seq;
    di.pc = 0x1000 + seq * isa::InstBytes;
    return di;
}

TEST(StitchedTraceSource, ServesHandBackThenTopsUpFromBacking)
{
    std::vector<func::DynInst> backing_recs;
    for (SeqNum seq = 4; seq <= 10; ++seq)
        backing_recs.push_back(rec(seq));
    func::VectorTraceSource backing(std::move(backing_recs));
    StitchedTraceSource stitched(&backing);
    stitched.prepend({rec(1), rec(2), rec(3)});
    EXPECT_EQ(stitched.pendingCount(), 3u);

    // One fill spans the hand-back/backing seam: a full return, so a
    // short fill still means true end of stream.
    func::DynInst buf[5];
    ASSERT_EQ(stitched.fill(buf, 5), 5u);
    for (SeqNum seq = 1; seq <= 5; ++seq)
        EXPECT_EQ(buf[seq - 1].seq, seq);
    EXPECT_EQ(stitched.pendingCount(), 0u);

    // Remaining backing records, then a short (final) fill.
    ASSERT_EQ(stitched.fill(buf, 5), 5u);
    for (SeqNum seq = 6; seq <= 10; ++seq)
        EXPECT_EQ(buf[seq - 6].seq, seq);
    EXPECT_EQ(stitched.fill(buf, 5), 0u);
}

TEST(StitchedTraceSource, PrependAgainKeepsStreamOrder)
{
    func::VectorTraceSource backing({rec(5)});
    StitchedTraceSource stitched(&backing);
    stitched.prepend({rec(2), rec(3), rec(4)});
    func::DynInst out;
    ASSERT_TRUE(stitched.next(out));
    EXPECT_EQ(out.seq, 2u);
    // A second hand-back precedes the unserved remnant of the first:
    // 1 (new), then 3, 4 (old remnant), then 5 (backing).
    stitched.prepend({rec(1)});
    std::vector<SeqNum> served;
    while (stitched.next(out))
        served.push_back(out.seq);
    EXPECT_EQ(served, (std::vector<SeqNum>{1, 3, 4, 5}));
}

// --- Warm-only update paths ------------------------------------------

TEST(WarmPaths, CacheWarmAccessInstallsWithoutStatistics)
{
    mem::CacheParams params{.name = "t", .sizeBytes = 256, .assoc = 2,
                            .lineBytes = 32};
    mem::Cache cache(params);
    // Miss: installs the line, reports no eviction while the set has
    // room, and leaves the demand counters untouched.
    mem::Cache::FillResult evicted;
    EXPECT_FALSE(cache.warmAccess(0x1000, false, &evicted));
    EXPECT_FALSE(evicted.evicted);
    EXPECT_TRUE(cache.probe(0x1000));
    // Hit path.
    EXPECT_TRUE(cache.warmAccess(0x1000, false));
    EXPECT_EQ(cache.hits.value(), 0u);
    EXPECT_EQ(cache.misses.value(), 0u);

    // Fill the 2-way set with conflicting lines, then overflow it: the
    // displaced dirty victim is reported for next-level coherence.
    cache.warmAccess(0x1000, true);  // write hit: dirty, MRU
    EXPECT_FALSE(cache.warmAccess(0x1000 + 128, false, &evicted));
    EXPECT_FALSE(evicted.evicted);  // second way was free
    EXPECT_FALSE(cache.warmAccess(0x1000 + 256, false, &evicted));
    EXPECT_TRUE(evicted.evicted);
    EXPECT_EQ(evicted.evictedAddr, 0x1000u);  // LRU after +128's fill
    EXPECT_TRUE(evicted.evictedDirty);
    EXPECT_FALSE(cache.probe(0x1000));
}

TEST(WarmPaths, PredictorWarmMatchesPredictUpdate)
{
    // Train one predictor through the demand path and a twin through
    // the warm path; they must end up making identical predictions.
    // Bimodal: one counter per PC, so the trained direction sticks.
    cpu::BranchPredictorParams params;
    params.kind = cpu::PredictorKind::Bimodal;
    cpu::BranchPredictor demand(params);
    cpu::BranchPredictor warmed(params);
    isa::Inst branch{isa::Opcode::BNE, isa::NoReg, 5, 0, 16};
    Addr pc = 0x2000;
    Addr target = pc + 64;
    for (int i = 0; i < 8; ++i) {
        demand.predict(pc, branch);
        demand.update(pc, branch, true, target);
        warmed.warm(pc, branch, true, target);
    }
    // The warm path never touched the statistics...
    EXPECT_EQ(warmed.lookups.value(), 0u);
    EXPECT_EQ(warmed.condLookups.value(), 0u);
    // ...but left the same predictor state behind.
    auto a = demand.predict(pc, branch);
    auto b = warmed.predict(pc, branch);
    EXPECT_EQ(a.taken, b.taken);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.targetKnown, b.targetKnown);
    EXPECT_TRUE(b.taken);  // trained taken
}

// --- Statistics snapshot/restore -------------------------------------

TEST(StatSnapshot, RestoreDropsEverythingAccumulatedSince)
{
    stats::StatGroup group("g");
    stats::Scalar a;
    stats::Average avg;
    group.addScalar("a", &a, "");
    group.addAverage("avg", &avg, "");
    a += 7;
    avg.sample(2);
    stats::StatSnapshot snap = group.snapshot();
    a += 100;
    avg.sample(50);
    group.restore(snap);
    EXPECT_EQ(a.value(), 7u);
    EXPECT_DOUBLE_EQ(avg.mean(), 2.0);
    EXPECT_EQ(avg.count(), 1u);
}

// --- [sample] configuration rules ------------------------------------

TEST(SampleConfig, SampledModeRejectsFullDetailFeatures)
{
    SimConfig config = SimConfig::defaults();
    config.sample.mode = SampleParams::Mode::Periodic;
    config.warmupInsts = 1000;
    auto diags = config.validate();
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].field, "sample.mode");

    config.warmupInsts = 0;
    config.obs.sampleCycles = 500;
    EXPECT_FALSE(config.validate().empty());

    config.obs.sampleCycles = 0;
    EXPECT_TRUE(config.validate().empty());
}

TEST(SampleConfig, TraceCacheBoundMustBeNonzero)
{
    SimConfig config = SimConfig::defaults();
    config.traceCacheMb = 0;
    auto diags = config.validate();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].field, "trace_cache_mb");
}

// --- End-to-end sampled runs -----------------------------------------

SimConfig
sampledConfig()
{
    SimConfig config = SimConfig::defaults();
    config.sample.mode = SampleParams::Mode::Periodic;
    config.sample.warmupInsts = 1000;
    config.sample.measureInsts = 2000;
    config.sample.periodInsts = 20'000;
    return config;
}

TEST(SampledRun, ReportsEstimateAndIsDeterministic)
{
    setVerbose(false);
    SimResult a = simulate(sampledConfig());
    EXPECT_TRUE(a.sampled);
    EXPECT_GE(a.measuredIntervals, 5u);
    EXPECT_GT(a.ffInsts, 0u);
    EXPECT_GT(a.ipc, 0.0);
    // The interval brackets the reported mean (asymmetrically: it is
    // the reciprocal of a symmetric mean-CPI interval).
    EXPECT_LE(a.ipcCiLow, a.ipc);
    EXPECT_GE(a.ipcCiHigh, a.ipc);
    EXPECT_NEAR(a.ipcCiHalf, (a.ipcCiHigh - a.ipcCiLow) / 2, 1e-9);
    EXPECT_FALSE(a.sampleJson.empty());
    // The headline IPC is the interval mean (SMARTS estimator), not
    // the aggregate insts/cycles ratio — but the union of measured
    // intervals should put that ratio in the same ballpark.
    double union_ipc = static_cast<double>(a.insts) / a.cycles;
    EXPECT_NEAR(a.ipc, union_ipc, 0.05 * union_ipc);

    SimResult b = simulate(sampledConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.sampleJson, b.sampleJson);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

TEST(SampledRun, WarmIndexMatchesRecordByRecordWalk)
{
    // A live-executed sampled run fast-forwards record by record
    // (warmSpan); a replayed one walks the capture's precomputed
    // warm-command index (warmCompacted).  The compaction must be
    // state-exact, so the two runs — same workload, same plan — have
    // to agree to the byte.
    setVerbose(false);
    SimResult live = simulate(sampledConfig());
    TraceCache cache;
    SimConfig config = sampledConfig();
    config.traceCache = &cache;
    SimResult replayed = simulate(config);
    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.insts, replayed.insts);
    EXPECT_EQ(live.ipc, replayed.ipc);
    EXPECT_EQ(live.sampleJson, replayed.sampleJson);
    EXPECT_EQ(live.statsJson, replayed.statsJson);
}

TEST(SampledRun, EstimateTracksTheFullDetailResult)
{
    setVerbose(false);
    SimResult sampled = simulate(sampledConfig());
    SimResult full = simulate(SimConfig::defaults());
    EXPECT_FALSE(full.sampled);
    // Loose sanity bound — the tight (<= 3%) bound is F13's gate; this
    // guards against gross accounting bugs (e.g. measuring the warm-up
    // or fast-forward legs), not sampling noise.
    double err = std::abs(sampled.ipc - full.ipc) / full.ipc;
    EXPECT_LT(err, 0.15) << "sampled " << sampled.ipc << " vs full "
                         << full.ipc;
}

} // namespace
} // namespace cpe::sim
