/**
 * @file
 * Tests for the top-level simulation facade: configuration handling,
 * the simulate() API, warm-up, result extraction, and the ResultGrid
 * reporting used by the bench harness.
 */

#include <gtest/gtest.h>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "util/error.hh"

#include "expect_error.hh"

namespace cpe::sim {
namespace {

TEST(SimConfig, DefaultsDescribeTheEvaluationMachine)
{
    SimConfig config = SimConfig::defaults();
    EXPECT_EQ(config.core.issueWidth, 4u);
    EXPECT_EQ(config.core.dcache.cache.sizeBytes, 16u * 1024);
    EXPECT_EQ(config.core.dcache.cache.lineBytes, 32u);
    std::string text = config.describe();
    EXPECT_NE(text.find("issue width"), std::string::npos);
    EXPECT_NE(text.find("4-way ooo"), std::string::npos);
    EXPECT_NE(text.find("16 KiB"), std::string::npos);
    EXPECT_NE(text.find("store buffer"), std::string::npos);
}

TEST(SimConfig, TagFallsBackToTechDescription)
{
    SimConfig config = SimConfig::defaults();
    EXPECT_EQ(config.tag(), config.tech().describe());
    config.label = "custom";
    EXPECT_EQ(config.tag(), "custom");
}

TEST(SimConfig, TechDescribeIsUnambiguous)
{
    using core::PortTechConfig;
    EXPECT_EQ(PortTechConfig::singlePortBase().describe(), "1p8B");
    EXPECT_EQ(PortTechConfig::dualPortBase().describe(), "2p8B");
    EXPECT_EQ(PortTechConfig::singlePortAllTechniques().describe(),
              "1p32B+sb8c+lb4");
    PortTechConfig banked = PortTechConfig::dualPortBase();
    banked.banks = 4;
    EXPECT_EQ(banked.describe(), "2p8Bx4bk");
}

TEST(Simulate, ReturnsConsistentResults)
{
    setVerbose(false);
    auto result = simulate("crc", core::PortTechConfig::dualPortBase());
    EXPECT_EQ(result.workload, "crc");
    EXPECT_GT(result.insts, 100'000u);
    EXPECT_GT(result.cycles, result.insts / 4);
    EXPECT_NEAR(result.ipc,
                static_cast<double>(result.insts) / result.cycles,
                1e-9);
    EXPECT_GT(result.condAccuracy, 0.5);
    EXPECT_GE(result.portUtilization, 0.0);
    EXPECT_LE(result.portUtilization, 1.0);
    EXPECT_NE(result.statsDump.find("core.ipc"), std::string::npos);
    EXPECT_NE(result.statsDump.find("memsys.l2"), std::string::npos);
}

TEST(Simulate, DeterministicAcrossCalls)
{
    setVerbose(false);
    auto a = simulate("sort", core::PortTechConfig::singlePortBase());
    auto b = simulate("sort", core::PortTechConfig::singlePortBase());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
}

TEST(Simulate, WarmupShrinksMeasuredRegion)
{
    setVerbose(false);
    SimConfig whole = SimConfig::defaults();
    whole.workloadName = "crc";
    auto full = simulate(whole);

    SimConfig warm = whole;
    warm.warmupInsts = full.insts / 2;
    auto measured = simulate(warm);

    EXPECT_EQ(measured.insts, full.insts - full.insts / 2);
    EXPECT_LT(measured.cycles, full.cycles);
    // The steady-state region is at least as fast as the whole run.
    EXPECT_GE(measured.ipc, full.ipc * 0.99);
}

TEST(ResultGrid, LookupAndGeomean)
{
    ResultGrid grid("IPC");
    SimResult a;
    a.workload = "w1";
    a.configTag = "c1";
    a.ipc = 1.0;
    SimResult b = a;
    b.workload = "w2";
    b.ipc = 4.0;
    SimResult c = a;
    c.configTag = "c2";
    c.ipc = 2.0;
    grid.add(a);
    grid.add(b);
    grid.add(c);

    EXPECT_EQ(grid.workloads().size(), 2u);
    EXPECT_EQ(grid.configs().size(), 2u);
    EXPECT_DOUBLE_EQ(grid.ipc("w1", "c1"), 1.0);
    EXPECT_DOUBLE_EQ(grid.geomeanIpc("c1"), 2.0);  // sqrt(1 * 4)
    EXPECT_DOUBLE_EQ(grid.geomeanIpc("c2"), 2.0);  // only w1
}

TEST(ResultGrid, Tables)
{
    ResultGrid grid("IPC");
    SimResult a;
    a.workload = "w";
    a.configTag = "base";
    a.ipc = 2.0;
    SimResult b = a;
    b.configTag = "fast";
    b.ipc = 3.0;
    grid.add(a);
    grid.add(b);

    std::string ipc_table = grid.ipcTable().render();
    EXPECT_NE(ipc_table.find("base"), std::string::npos);
    EXPECT_NE(ipc_table.find("3.000"), std::string::npos);
    EXPECT_NE(ipc_table.find("geomean"), std::string::npos);

    std::string rel = grid.relativeTable("base").render();
    EXPECT_NE(rel.find("1.500x"), std::string::npos);
    EXPECT_NE(rel.find("1.000x"), std::string::npos);
}

TEST(ResultGridDeathTest, MissingCellsPanic)
{
    ResultGrid grid("IPC");
    SimResult a;
    a.workload = "w";
    a.configTag = "c";
    a.ipc = 1.0;
    grid.add(a);
    CPE_EXPECT_THROW_MSG(grid.ipc("w", "nope"), SimError,
                         "no result");
    CPE_EXPECT_THROW_MSG(grid.relativeTable("nope"), SimError,
                         "baseline");
}

TEST(RatioStr, Format)
{
    EXPECT_EQ(ratioStr(1.0), "1.000x");
    EXPECT_EQ(ratioStr(0.9126), "0.913x");  // banker-rounding-safe value
}

} // namespace
} // namespace cpe::sim
