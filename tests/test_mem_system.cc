/**
 * @file
 * Tests for the miss-handling machinery and the L2+DRAM hierarchy:
 * MSHR allocate/merge/ready, DRAM bus occupancy, and end-to-end fill
 * latencies.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/mshr.hh"

namespace cpe::mem {
namespace {

TEST(Mshr, AllocateFindTakeReady)
{
    MshrFile mshrs("m", 2);
    EXPECT_FALSE(mshrs.full());
    EXPECT_EQ(mshrs.find(0x100), nullptr);

    mshrs.allocate(0x100, 50, false);
    mshrs.allocate(0x200, 40, true);
    EXPECT_TRUE(mshrs.full());
    EXPECT_NE(mshrs.find(0x100), nullptr);
    EXPECT_EQ(mshrs.occupancy(), 2u);

    auto none = mshrs.takeReady(30);
    EXPECT_TRUE(none.empty());

    auto ready = mshrs.takeReady(45);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].lineAddr, 0x200u);
    EXPECT_TRUE(ready[0].writeIntent);
    EXPECT_EQ(mshrs.occupancy(), 1u);

    auto rest = mshrs.takeReady(100);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].lineAddr, 0x100u);
}

TEST(Mshr, ReadyOrderIsArrivalOrder)
{
    MshrFile mshrs("m", 4);
    mshrs.allocate(0x300, 70, false);
    mshrs.allocate(0x100, 50, false);
    mshrs.allocate(0x200, 60, false);
    auto ready = mshrs.takeReady(100);
    ASSERT_EQ(ready.size(), 3u);
    EXPECT_EQ(ready[0].lineAddr, 0x100u);
    EXPECT_EQ(ready[1].lineAddr, 0x200u);
    EXPECT_EQ(ready[2].lineAddr, 0x300u);
}

TEST(Mshr, TargetMergingAndCap)
{
    MshrFile mshrs("m", 2, 3);
    auto &entry = mshrs.allocate(0x100, 50, false);
    EXPECT_TRUE(mshrs.addTarget(entry, false));
    EXPECT_TRUE(mshrs.addTarget(entry, true));
    EXPECT_EQ(entry.targets, 3u);
    EXPECT_TRUE(entry.writeIntent);  // picked up from the merge
    EXPECT_FALSE(mshrs.addTarget(entry, false));  // cap reached
    EXPECT_EQ(mshrs.merges.value(), 2u);
}

TEST(MshrDeathTest, OverAllocation)
{
    MshrFile mshrs("m", 1);
    mshrs.allocate(0x100, 10, false);
    EXPECT_DEATH(mshrs.allocate(0x200, 10, false), "full");
    EXPECT_DEATH(mshrs.allocate(0x100, 10, false), "full");
}

TEST(Dram, LatencyAndBusOccupancy)
{
    DramParams params;
    params.latency = 50;
    params.cyclesPerLine = 4;
    Dram dram(params);

    // Back-to-back reads serialize on the bus at 4-cycle spacing.
    EXPECT_EQ(dram.readLine(100), 150u);
    EXPECT_EQ(dram.readLine(100), 154u);
    EXPECT_EQ(dram.readLine(100), 158u);
    EXPECT_EQ(dram.reads.value(), 3u);

    // A later request after the bus drains sees raw latency.
    EXPECT_EQ(dram.readLine(500), 550u);

    // Writes consume bandwidth that delays subsequent reads.
    dram.writeLine(600);
    EXPECT_EQ(dram.readLine(600), 654u);
    EXPECT_EQ(dram.writes.value(), 1u);
}

TEST(Hierarchy, L2HitVsMissLatency)
{
    L2Params l2;
    l2.hitLatency = 8;
    l2.cyclesPerAccess = 1;
    DramParams dram;
    dram.latency = 50;
    dram.cyclesPerLine = 4;
    MemHierarchy hierarchy(l2, dram);

    // Cold: L2 miss -> DRAM round trip.
    Cycle cold = hierarchy.fetchLine(0x1000, 100);
    EXPECT_GT(cold, 100u + 50u);

    // Warm: the line now sits in L2.
    Cycle warm = hierarchy.fetchLine(0x1000, 1000);
    EXPECT_EQ(warm, 1000u + 8u);
    EXPECT_EQ(hierarchy.l2().hits.value(), 1u);
    EXPECT_EQ(hierarchy.l2().misses.value(), 1u);
}

TEST(Hierarchy, L2BankOccupancySerializes)
{
    L2Params l2;
    l2.hitLatency = 8;
    l2.cyclesPerAccess = 2;
    MemHierarchy hierarchy(l2, DramParams{});

    hierarchy.fetchLine(0x1000, 0);
    hierarchy.fetchLine(0x2000, 0);  // waits for the L2 bank

    // Warm both lines, then measure hit timing under contention.
    Cycle a = hierarchy.fetchLine(0x1000, 100);
    Cycle b = hierarchy.fetchLine(0x2000, 100);
    EXPECT_EQ(a, 108u);
    EXPECT_EQ(b, 110u);  // started 2 cycles later
}

TEST(Hierarchy, WritebackAllocatesInL2)
{
    MemHierarchy hierarchy(L2Params{}, DramParams{});
    // Writeback of a line L2 has never seen: write-allocate.
    hierarchy.writebackLine(0x4000, 10);
    EXPECT_EQ(hierarchy.l2().misses.value(), 1u);
    EXPECT_EQ(hierarchy.dram().reads.value(), 1u);
    // The line is now present and dirty; a fetch hits.
    Cycle t = hierarchy.fetchLine(0x4000, 1000);
    EXPECT_EQ(t, 1000u + L2Params{}.hitLatency);
    EXPECT_TRUE(hierarchy.l2().isDirty(0x4000));
}

TEST(Hierarchy, DirtyL2EvictionWritesToDram)
{
    L2Params l2;
    l2.cache.sizeBytes = 256;  // tiny: 4 sets x 2 ways
    l2.cache.assoc = 2;
    l2.cache.lineBytes = 32;
    MemHierarchy hierarchy(l2, DramParams{});

    hierarchy.writebackLine(0x1000, 0);   // dirty in L2
    hierarchy.fetchLine(0x1080, 100);     // same set
    std::uint64_t writes_before = hierarchy.dram().writes.value();
    hierarchy.fetchLine(0x1100, 200);     // evicts the dirty line
    EXPECT_GT(hierarchy.dram().writes.value(), writes_before);
}

} // namespace
} // namespace cpe::mem
