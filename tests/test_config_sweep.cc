/**
 * @file
 * Cross-configuration integration sweep: real workloads must commit
 * the same instruction count as the functional model under every port
 * configuration — including the extension features (banking,
 * prefetching, drain policies) — and cycle counts must respect the
 * obvious dominance relations.
 */

#include <gtest/gtest.h>

#include "func/executor.hh"
#include "sim/simulator.hh"
#include "workload/registry.hh"

namespace cpe {
namespace {

std::vector<core::PortTechConfig>
sweepConfigs()
{
    using TC = core::PortTechConfig;
    std::vector<TC> configs = {TC::singlePortBase(), TC::dualPortBase(),
                               TC::singlePortAllTechniques()};
    TC banked = TC::dualPortBase();
    banked.banks = 2;
    configs.push_back(banked);
    TC threshold = TC::singlePortAllTechniques();
    threshold.drainPolicy = core::DrainPolicy::Threshold;
    configs.push_back(threshold);
    return configs;
}

class ConfigSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ConfigSweep, EveryConfigCommitsTheFunctionalStream)
{
    setVerbose(false);
    const std::string workload = GetParam();
    workload::WorkloadOptions options;
    auto program =
        workload::WorkloadRegistry::instance().build(workload, options);
    func::Executor golden(program);
    std::uint64_t expected = golden.run();

    for (const auto &tech : sweepConfigs()) {
        auto result = sim::simulate(workload, tech);
        EXPECT_EQ(result.insts, expected) << tech.describe();
        EXPECT_GE(result.cycles, expected / 4) << tech.describe();
    }

    // Prefetch variant too (not a PortTechConfig knob).
    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.nextLinePrefetch = true;
    auto prefetch = sim::simulate(config);
    EXPECT_EQ(prefetch.insts, expected);
}

TEST_P(ConfigSweep, MorePortsNeverHurtMuch)
{
    setVerbose(false);
    const std::string workload = GetParam();
    auto one = sim::simulate(workload,
                             core::PortTechConfig::singlePortBase());
    auto two = sim::simulate(workload,
                             core::PortTechConfig::dualPortBase());
    // The second port can only remove structural stalls; tiny
    // second-order scheduling wobbles are tolerated (1%).
    EXPECT_LE(two.cycles, one.cycles * 101 / 100) << workload;
}

INSTANTIATE_TEST_SUITE_P(Workloads, ConfigSweep,
                         ::testing::Values("histogram", "saxpy",
                                           "stencil", "strops"));

} // namespace
} // namespace cpe
