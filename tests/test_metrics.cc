/**
 * @file
 * Service telemetry (src/obs/metrics.hh): histogram bucket selection
 * and interpolated percentiles, concurrent-increment exactness (the
 * TSan lane's target), snapshot/Prometheus rendering, the structured
 * service log, and — against a live in-process server — the two
 * contracts the instrumentation must honor: disarmed, the served grid
 * is byte-identical to a direct run; armed, the registry's counters
 * exactly reconcile with the per-run "source" tallies of the stream.
 */

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/result_store.hh"
#include "serve/server.hh"
#include "sim/report.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace cpe {
namespace {

/** Restore the registry's disarmed default no matter how a test exits
 *  — later tests in this binary depend on the disarmed state. */
struct ArmedScope
{
    explicit ArmedScope(bool armed)
    {
        if (armed)
            obs::MetricsRegistry::arm();
        else
            obs::MetricsRegistry::disarm();
    }
    ~ArmedScope() { obs::MetricsRegistry::disarm(); }
};

TEST(Metrics, HistogramBucketSelectionAndUnits)
{
    obs::MetricsRegistry registry;
    obs::Histogram *h =
        registry.histogram("t.latency_us", {100.0, 1000.0, 10000.0});
    ASSERT_EQ(h->bounds().size(), 3u);

    h->observe(50.0);    // <= 100        -> bucket 0
    h->observe(100.0);   // == bound      -> bucket 0 (le semantics)
    h->observe(101.0);   // first above   -> bucket 1
    h->observe(1000.0);  //               -> bucket 1
    h->observe(9999.0);  //               -> bucket 2
    h->observe(50000.0); // above last    -> overflow bucket

    EXPECT_EQ(h->bucketCount(0), 2u);
    EXPECT_EQ(h->bucketCount(1), 2u);
    EXPECT_EQ(h->bucketCount(2), 1u);
    EXPECT_EQ(h->bucketCount(3), 1u) << "overflow bucket";
    EXPECT_EQ(h->count(), 6u);
    EXPECT_DOUBLE_EQ(h->sum(), 50.0 + 100.0 + 101.0 + 1000.0 + 9999.0 +
                                   50000.0);
}

TEST(Metrics, HistogramQuantilesInterpolateAndClamp)
{
    obs::MetricsRegistry registry;
    obs::Histogram *h = registry.histogram("t.q", {100.0, 200.0});

    EXPECT_EQ(h->quantile(0.5), 0.0) << "empty histogram";

    // 10 observations in (0,100], none above: the median lands mid
    // bucket, and every quantile stays within the first bound.
    for (int i = 0; i < 10; ++i)
        h->observe(42.0);
    EXPECT_GT(h->quantile(0.5), 0.0);
    EXPECT_LE(h->quantile(0.5), 100.0);
    EXPECT_LE(h->quantile(0.99), 100.0);

    // Pile everything above the last bound: quantiles clamp to it
    // rather than inventing values past the histogram's range.
    obs::Histogram *over = registry.histogram("t.q_over", {100.0, 200.0});
    for (int i = 0; i < 10; ++i)
        over->observe(5000.0);
    EXPECT_DOUBLE_EQ(over->quantile(0.5), 200.0);
    EXPECT_DOUBLE_EQ(over->quantile(0.99), 200.0);
}

TEST(Metrics, RegistrationIsIdempotentAndZeroKeepsPointers)
{
    obs::MetricsRegistry registry;
    obs::Counter *a = registry.counter("t.count", "help");
    obs::Counter *b = registry.counter("t.count");
    EXPECT_EQ(a, b) << "register-or-fetch must return stable pointers";
    a->inc(3);
    EXPECT_EQ(b->value(), 3u);

    obs::Gauge *g = registry.gauge("t.gauge");
    g->set(7);
    g->add(-2);
    EXPECT_EQ(g->value(), 5);

    registry.zeroAll();
    EXPECT_EQ(a->value(), 0u);
    EXPECT_EQ(g->value(), 0);
    EXPECT_EQ(registry.counter("t.count"), a) << "zeroing never deletes";
}

TEST(Metrics, ZeroPrefixResetsOnlyMatchingNames)
{
    obs::MetricsRegistry registry;
    obs::Counter *serve = registry.counter("serve.requests");
    obs::Counter *store = registry.counter("store.hits");
    serve->inc(5);
    store->inc(5);
    registry.zeroPrefix("serve.");
    EXPECT_EQ(serve->value(), 0u);
    EXPECT_EQ(store->value(), 5u) << "other prefixes untouched";
}

TEST(Metrics, ConcurrentIncrementsAreExact)
{
    // The TSan lane's target: many threads hammering one counter, one
    // gauge, and one histogram must lose no update — and the histogram
    // invariant sum(buckets) == count() must hold at rest.
    obs::MetricsRegistry registry;
    obs::Counter *counter = registry.counter("t.concurrent");
    obs::Gauge *gauge = registry.gauge("t.concurrent_gauge");
    obs::Histogram *h =
        registry.histogram("t.concurrent_hist", {10.0, 100.0, 1000.0});

    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t]() {
            for (int i = 0; i < kPerThread; ++i) {
                counter->inc();
                gauge->add(1);
                gauge->add(-1);
                h->observe(static_cast<double>((t * kPerThread + i) %
                                               2000));
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    const std::uint64_t total =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(counter->value(), total);
    EXPECT_EQ(gauge->value(), 0);
    EXPECT_EQ(h->count(), total);
    std::uint64_t in_buckets = 0;
    for (std::size_t i = 0; i <= h->bounds().size(); ++i)
        in_buckets += h->bucketCount(i);
    EXPECT_EQ(in_buckets, total);
    EXPECT_GT(h->sum(), 0.0);
}

TEST(Metrics, SnapshotJsonIsSortedAndCarriesThePinnedSchema)
{
    obs::MetricsRegistry registry;
    registry.counter("z.last")->inc(1);
    registry.counter("a.first")->inc(2);
    registry.gauge("m.middle")->set(-3);
    obs::Histogram *h = registry.histogram("h.lat", {100.0});
    h->observe(50.0);
    h->observe(500.0);

    Json snapshot = registry.snapshotJson();
    const Json &counters = snapshot.at("counters", "snapshot");
    ASSERT_EQ(counters.members().size(), 2u);
    EXPECT_EQ(counters.members()[0].first, "a.first") << "sorted";
    EXPECT_EQ(counters.members()[1].first, "z.last");
    EXPECT_EQ(counters.members()[0].second.asNumber(), 2.0);

    EXPECT_EQ(snapshot.at("gauges", "snapshot")
                  .at("m.middle", "gauge")
                  .asNumber(),
              -3.0);

    const Json &hist =
        snapshot.at("histograms", "snapshot").at("h.lat", "histogram");
    EXPECT_EQ(hist.at("count", "hist").asNumber(), 2.0);
    EXPECT_EQ(hist.at("sum", "hist").asNumber(), 550.0);
    EXPECT_TRUE(hist.find("p50"));
    EXPECT_TRUE(hist.find("p90"));
    EXPECT_TRUE(hist.find("p99"));
    const Json &buckets = hist.at("buckets", "hist");
    ASSERT_EQ(buckets.items().size(), 2u);
    EXPECT_EQ(buckets.items()[0].at("le", "bucket").asNumber(),
              100.0);
    EXPECT_EQ(buckets.items()[0].at("n", "bucket").asNumber(), 1.0);
    EXPECT_EQ(buckets.items()[1].at("le", "bucket").asString(),
              "+inf");
    EXPECT_EQ(buckets.items()[1].at("n", "bucket").asNumber(), 1.0);
}

TEST(Metrics, PrometheusTextMatchesTheExpositionFormat)
{
    obs::MetricsRegistry registry;
    registry.counter("serve.requests", "requests served")->inc(4);
    registry.gauge("pool.queue_depth")->set(2);
    obs::Histogram *h =
        registry.histogram("serve.request_latency_us.sweep", {100.0});
    h->observe(50.0);
    h->observe(500.0);

    const std::string text = registry.prometheusText();
    EXPECT_NE(text.find("# TYPE cpe_serve_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("# HELP cpe_serve_requests requests served"),
              std::string::npos);
    EXPECT_NE(text.find("cpe_serve_requests 4"), std::string::npos);
    EXPECT_NE(text.find("# TYPE cpe_pool_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("cpe_pool_queue_depth 2"), std::string::npos);
    // Histogram buckets are cumulative and end at +Inf == _count.
    EXPECT_NE(
        text.find(
            "cpe_serve_request_latency_us_sweep_bucket{le=\"100\"} 1"),
        std::string::npos);
    EXPECT_NE(
        text.find(
            "cpe_serve_request_latency_us_sweep_bucket{le=\"+Inf\"} 2"),
        std::string::npos);
    EXPECT_NE(text.find("cpe_serve_request_latency_us_sweep_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("cpe_serve_request_latency_us_sweep_sum 550"),
              std::string::npos);
}

TEST(Metrics, ScopedTimerIsInertWhileDisarmed)
{
    ArmedScope disarmed(false);
    obs::MetricsRegistry registry;
    obs::Histogram *h = registry.histogram("t.timer", {100.0});
    {
        obs::ScopedTimerUs timer(h);
        EXPECT_EQ(timer.elapsedUs(), 0.0) << "no clock while disarmed";
    }
    EXPECT_EQ(h->count(), 0u) << "no observation while disarmed";

    ArmedScope armed(true);
    {
        obs::ScopedTimerUs timer(h);
    }
    EXPECT_EQ(h->count(), 1u) << "armed timers observe on destruction";
}

TEST(Metrics, ServiceLogWritesLeveledRidCorrelatedSpans)
{
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("cpe_metrics_log." + std::to_string(::getpid()) + ".jsonl");
    std::filesystem::remove(path);

    obs::ServiceLog &log = obs::ServiceLog::instance();
    log.open(path.string(), obs::LogLevel::Info);
    EXPECT_TRUE(obs::ServiceLog::armed());
    EXPECT_FALSE(log.enabled(obs::LogLevel::Debug)) << "below min level";

    bool debug_fields_rendered = false;
    log.write(obs::LogLevel::Debug, "invisible", "r-9",
              [&](Json &) { debug_fields_rendered = true; });
    EXPECT_FALSE(debug_fields_rendered)
        << "field builders must not run for suppressed records";

    log.write(obs::LogLevel::Info, "request.accept", "r-1",
              [](Json &doc) { doc["runs"] = 7.0; });
    {
        obs::LogSpan span("store_fetch", "r-1",
                          [](Json &doc) { doc["key"] = "k"; });
        span.note("source", Json("sim"));
    }
    log.write(obs::LogLevel::Error, "request.fail");
    const std::uint64_t lines = log.lines();
    log.close();
    EXPECT_FALSE(obs::ServiceLog::armed());

    std::ifstream in(path);
    ASSERT_TRUE(in);
    std::vector<Json> records;
    std::string line;
    while (std::getline(in, line))
        records.push_back(Json::parse(line, "service log"));
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(lines, 4u);

    EXPECT_EQ(records[0].at("ev", "log").asString(), "request.accept");
    EXPECT_EQ(records[0].at("lvl", "log").asString(), "info");
    EXPECT_EQ(records[0].at("rid", "log").asString(), "r-1");
    EXPECT_EQ(records[0].at("runs", "log").asNumber(), 7.0);
    EXPECT_TRUE(records[0].find("ts_us"));

    EXPECT_EQ(records[1].at("ev", "log").asString(),
              "store_fetch.begin");
    EXPECT_EQ(records[1].at("key", "log").asString(), "k");
    EXPECT_EQ(records[2].at("ev", "log").asString(), "store_fetch.end");
    EXPECT_EQ(records[2].at("rid", "log").asString(), "r-1");
    EXPECT_EQ(records[2].at("source", "log").asString(), "sim");
    EXPECT_TRUE(records[2].find("dur_us"));

    EXPECT_EQ(records[3].at("lvl", "log").asString(), "error");
    EXPECT_FALSE(records[3].find("rid")) << "empty rid omits the member";

    std::filesystem::remove(path);
}

TEST(Metrics, LogLevelParsingRoundTrips)
{
    EXPECT_EQ(obs::parseLogLevel("debug"), obs::LogLevel::Debug);
    EXPECT_EQ(obs::parseLogLevel("info"), obs::LogLevel::Info);
    EXPECT_EQ(obs::parseLogLevel("warn"), obs::LogLevel::Warn);
    EXPECT_EQ(obs::parseLogLevel("error"), obs::LogLevel::Error);
    EXPECT_THROW(obs::parseLogLevel("loud"), ConfigError);
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Warn), "warn");
}

TEST(Metrics, VersionSummaryNamesEveryPinnedSchema)
{
    const std::string summary = serve::versionSummary();
    EXPECT_NE(summary.find("simulator "), std::string::npos);
    EXPECT_NE(summary.find("cpet trace "), std::string::npos);
    EXPECT_NE(summary.find("store schema "), std::string::npos);
    EXPECT_NE(summary.find(sim::simulatorVersion()), std::string::npos);
    // The store schema key must fold in the simulator version: a
    // simulator change invalidates every cached result.
    EXPECT_NE(summary.find(std::string("sim-") + sim::simulatorVersion()),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Served-grid contracts, borrowed from test_serve_differential.cc.

std::vector<sim::SimConfig>
f5Configs()
{
    const exp::Experiment &f5 =
        exp::ExperimentRegistry::instance().get("F5");
    return exp::suiteConfigs(f5.variants(), {"crc"});
}

const std::string &
directGolden()
{
    static const std::string golden = []() {
        VerboseScope quiet(false);
        return sim::SweepRunner(1).runGrid(f5Configs()).toJson().dump(2);
    }();
    return golden;
}

struct ScratchDir
{
    std::filesystem::path dir;

    explicit ScratchDir(const std::string &name)
        : dir(std::filesystem::temp_directory_path() /
              (name + "." + std::to_string(::getpid())))
    {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string store() const { return (dir / "store").string(); }
    std::string socket() const { return (dir / "sock").string(); }
};

serve::SweepRequest
f5Request()
{
    serve::SweepRequest request;
    request.experiment = "F5";
    request.workloads = {"crc"};
    return request;
}

/** Per-run source tallies rebuilt from the response stream itself. */
struct SourceTally
{
    std::map<std::string, std::uint64_t> bySource;
    std::uint64_t insertFailures = 0;
    std::string grid;
    bool done = false;
};

SourceTally
servedSweepSources(const std::string &socket_path)
{
    SourceTally tally;
    sim::ResultGrid grid("IPC");
    serve::Client client(socket_path);
    Json terminal =
        client.sweep(f5Request(), [&](const Json &record) {
            const Json *type = record.find("t");
            if (!type || !type->isString() ||
                type->asString() != "result")
                return;
            ++tally.bySource[record.at("source", "result").asString()];
            grid.add(sim::resultFromJson(
                record.at("result", "result record")));
        });
    const Json *type = terminal.find("t");
    tally.done = type && type->isString() && type->asString() == "done";
    if (tally.done) {
        const Json &done_tally = terminal.at("tally", "done record");
        const Json *failures = done_tally.find("insert_failures");
        if (failures && failures->isNumber())
            tally.insertFailures =
                static_cast<std::uint64_t>(failures->asNumber());
    }
    tally.grid = grid.toJson().dump(2);
    return tally;
}

std::uint64_t
serveCounter(const char *name)
{
    return obs::MetricsRegistry::instance().counter(name)->value();
}

/** The request timer observes ~0.3 ms AFTER the client reads "done"
 *  (the server's epilogue runs after the terminal record is sent);
 *  wait out that race with a bounded poll. */
void
awaitHistogramCount(const obs::Histogram *histogram, std::uint64_t want)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (histogram->count() < want &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(MetricsServe, DisarmedServedGridIsByteIdenticalToDirect)
{
    VerboseScope quiet(false);
    ArmedScope disarmed(false);
    const std::size_t runs = f5Configs().size();
    ScratchDir scratch("cpe_metrics_disarmed");
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 2;
    serve::Server server(options, &store);
    server.start();

    SourceTally cold = servedSweepSources(scratch.socket());
    ASSERT_TRUE(cold.done);
    EXPECT_EQ(cold.grid, directGolden())
        << "disarmed instrumentation must not perturb results";
    SourceTally warm = servedSweepSources(scratch.socket());
    ASSERT_TRUE(warm.done);
    EXPECT_EQ(warm.grid, directGolden());

    // Counters count even while disarmed (only clocks and logging are
    // gated) — the compat Stats view reads them.
    serve::Server::Stats stats = server.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.runs, 2 * runs);
    EXPECT_EQ(stats.simulated, cold.bySource["sim"]);
    EXPECT_EQ(stats.storeHits, warm.bySource["store"]);
    EXPECT_EQ(stats.insertFailures, 0u);

    // Disarmed means no clock reads: the latency histograms stay empty.
    obs::Histogram *latency =
        obs::MetricsRegistry::instance().histogram(
            "serve.request_latency_us.sweep",
            obs::MetricsRegistry::latencyBucketsUs());
    EXPECT_EQ(latency->count(), 0u);

    server.stop();
}

TEST(MetricsServe, ArmedCountersReconcileWithPerRunSourceTallies)
{
    VerboseScope quiet(false);
    ArmedScope armed(true);
    const std::size_t runs = f5Configs().size();
    ScratchDir scratch("cpe_metrics_armed");
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 2;
    serve::Server server(options, &store);
    server.start(); // zeroes the "serve." prefix: exact session counts

    // Cold pass: every run simulates.
    SourceTally cold = servedSweepSources(scratch.socket());
    ASSERT_TRUE(cold.done);
    EXPECT_EQ(cold.grid, directGolden())
        << "armed instrumentation must not perturb results either";
    EXPECT_EQ(cold.bySource["sim"], runs);
    EXPECT_EQ(serveCounter("serve.simulated"), cold.bySource["sim"]);
    EXPECT_EQ(serveCounter("serve.store_hits"), 0u);

    // Warm pass: zero simulations, every run a store hit.
    SourceTally warm = servedSweepSources(scratch.socket());
    ASSERT_TRUE(warm.done);
    EXPECT_EQ(warm.grid, directGolden());
    EXPECT_EQ(warm.bySource["store"], runs);
    EXPECT_EQ(serveCounter("serve.simulated"),
              cold.bySource["sim"] + warm.bySource["sim"]);
    EXPECT_EQ(serveCounter("serve.store_hits"),
              cold.bySource["store"] + warm.bySource["store"]);
    EXPECT_EQ(serveCounter("serve.runs"), 2 * runs);
    EXPECT_EQ(serveCounter("serve.requests"), 2u);
    EXPECT_EQ(serveCounter("serve.errors"), 0u);

    // Armed request handling times every sweep.
    obs::Histogram *latency =
        obs::MetricsRegistry::instance().histogram(
            "serve.request_latency_us.sweep",
            obs::MetricsRegistry::latencyBucketsUs());
    awaitHistogramCount(latency, 2);
    EXPECT_EQ(latency->count(), 2u);
    EXPECT_GT(latency->sum(), 0.0);

    // The metrics protocol reply carries the same snapshot.
    serve::Client client(scratch.socket());
    Json reply = client.metrics();
    EXPECT_EQ(reply.at("t", "metrics").asString(), "metrics");
    const Json &counters = reply.at("metrics", "metrics reply")
                               .at("counters", "snapshot");
    EXPECT_EQ(counters.at("serve.simulated", "counters").asNumber(),
              static_cast<double>(runs));
    EXPECT_EQ(counters.at("serve.store_hits", "counters").asNumber(),
              static_cast<double>(runs));
    EXPECT_TRUE(reply.find("uptime_ms"));
    EXPECT_TRUE(reply.find("chaos"));

    server.stop();
}

TEST(MetricsServe, InsertFailuresSurfaceInDoneRecordAndCounters)
{
    VerboseScope quiet(false);
    ArmedScope armed(true);
    const std::size_t runs = f5Configs().size();
    ScratchDir scratch("cpe_metrics_chaos");
    serve::ResultStore store(scratch.store());
    serve::ServerOptions options;
    options.socketPath = scratch.socket();
    options.jobs = 1;
    serve::Server server(options, &store);
    server.start();

    // Every store publish fails: runs still succeed from the live
    // simulation, but none is durably cached — previously silent, now
    // a counter, a done-record member, and a chaos stat that must all
    // agree.
    util::ChaosSpec spec;
    spec.seed = 1;
    spec.rate = 1.0;
    spec.points = "serve.store_write";
    util::FaultInjector::instance().arm(spec);

    SourceTally tally = servedSweepSources(scratch.socket());
    util::FaultInjector::instance().disarm();
    ASSERT_TRUE(tally.done);
    EXPECT_EQ(tally.grid, directGolden())
        << "a failed cache insert never corrupts the served results";
    EXPECT_EQ(tally.bySource["sim"], runs);
    EXPECT_EQ(tally.insertFailures, runs)
        << "the done record reports every non-durable result";
    EXPECT_EQ(serveCounter("serve.insert_failures"), runs);
    EXPECT_EQ(server.stats().insertFailures, runs);

    // The injector's own accounting reconciles with what the server
    // surfaces through metricsJson()'s "chaos" member.
    const auto stats = util::FaultInjector::instance().stats();
    const auto point = stats.find("serve.store_write");
    ASSERT_NE(point, stats.end());
    EXPECT_EQ(point->second.fired, runs);
    Json metrics = server.metricsJson();
    const Json &chaos = metrics.at("chaos", "metricsJson");
    EXPECT_EQ(chaos.at("serve.store_write", "chaos")
                  .at("fired", "point")
                  .asNumber(),
              static_cast<double>(point->second.fired));
    EXPECT_EQ(chaos.at("serve.store_write", "chaos")
                  .at("evaluated", "point")
                  .asNumber(),
              static_cast<double>(point->second.evaluated));

    server.stop();
    EXPECT_EQ(store.entries(), 0u) << "nothing was durably cached";
}

} // namespace
} // namespace cpe
