/**
 * @file
 * The deterministic fault-injection harness end to end: ChaosSpec
 * parsing, the glob filter, the reproducible decision stream, the
 * retry policy's classification and backoff arithmetic, and the chaos
 * invariant the whole robustness layer exists to uphold — under any
 * armed schedule, every sweep run either completes bit-identical to
 * its fault-free twin or fails with a structured error, and a
 * disarmed process is byte-identical to one that never linked the
 * injector at all.
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.hh"
#include "serve/result_store.hh"
#include "serve/server.hh"
#include "sim/config.hh"
#include "sim/config_file.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "sim/trace_cache.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/retry.hh"

#include "expect_error.hh"

namespace cpe {
namespace {

/** Disarm on scope exit so no test leaks a schedule into another. */
struct DisarmGuard
{
    ~DisarmGuard() { util::FaultInjector::instance().disarm(); }
};

TEST(ChaosSpec, ParseRoundTrips)
{
    auto spec =
        util::ChaosSpec::parse("seed=42,rate=0.25,point=trace_cache.*");
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.rate, 0.25);
    EXPECT_EQ(spec.points, "trace_cache.*");
    EXPECT_TRUE(spec.enabled());

    auto again = util::ChaosSpec::parse(spec.toString());
    EXPECT_EQ(again.seed, spec.seed);
    EXPECT_EQ(again.rate, spec.rate);
    EXPECT_EQ(again.points, spec.points);

    // Keys are optional and order-free; rate 0 means "off".
    auto sparse = util::ChaosSpec::parse("rate=1,seed=7");
    EXPECT_EQ(sparse.seed, 7u);
    EXPECT_EQ(sparse.rate, 1.0);
    EXPECT_EQ(sparse.points, "*");
    EXPECT_FALSE(util::ChaosSpec::parse("seed=3").enabled());
}

TEST(ChaosSpec, ParseRejectsBadInput)
{
    CPE_EXPECT_THROW_MSG(util::ChaosSpec::parse("sede=1"), ConfigError,
                         "unknown chaos key");
    CPE_EXPECT_THROW_MSG(util::ChaosSpec::parse("rate=1.5"), ConfigError,
                         "outside [0, 1]");
    CPE_EXPECT_THROW_MSG(util::ChaosSpec::parse("rate=-0.1"), ConfigError,
                         "outside [0, 1]");
    EXPECT_THROW(util::ChaosSpec::parse("seed=banana"), ConfigError);
    EXPECT_THROW(util::ChaosSpec::parse("seed"), ConfigError);
}

TEST(ChaosSpec, GlobMatch)
{
    EXPECT_TRUE(util::globMatch("*", "anything.at.all"));
    EXPECT_TRUE(util::globMatch("trace_cache.*", "trace_cache.spill_write"));
    EXPECT_FALSE(util::globMatch("trace_cache.*", "trace_sink.write"));
    EXPECT_TRUE(util::globMatch("*.write", "trace_sink.write"));
    EXPECT_TRUE(util::globMatch("*cache*write", "trace_cache.spill_write"));
    EXPECT_FALSE(util::globMatch("*cache*write", "baseline.read"));
    EXPECT_TRUE(util::globMatch("journal.appen?", "journal.append"));
    EXPECT_FALSE(util::globMatch("journal.appen?", "journal.appendix"));
    EXPECT_TRUE(util::globMatch("", ""));
    EXPECT_FALSE(util::globMatch("", "x"));
}

TEST(FaultInjector, DisarmedNeverFiresAndCostsNoState)
{
    DisarmGuard guard;
    util::FaultInjector::instance().disarm();
    EXPECT_FALSE(util::FaultInjector::armed());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(CPE_FAULT_POINT("test.disarmed"));
    // Disarmed evaluations never even reach the registry.
    EXPECT_EQ(util::FaultInjector::instance().stats().count(
                  "test.disarmed"),
              0u);
}

TEST(FaultInjector, DecisionStreamIsReproducible)
{
    DisarmGuard guard;
    auto spec = util::ChaosSpec::parse("seed=1234,rate=0.5");
    auto draw_sequence = [&] {
        util::FaultInjector::instance().arm(spec);
        std::vector<bool> draws;
        for (int i = 0; i < 64; ++i)
            draws.push_back(CPE_FAULT_POINT("test.stream"));
        return draws;
    };
    auto first = draw_sequence();
    auto second = draw_sequence();  // re-arm resets the counters
    EXPECT_EQ(first, second);

    // A rate of 0.5 over 64 draws fires somewhere strictly between
    // never and always, and a different seed permutes the stream.
    unsigned fired = 0;
    for (bool draw : first)
        fired += draw;
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, 64u);

    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=1235,rate=0.5"));
    std::vector<bool> other_seed;
    for (int i = 0; i < 64; ++i)
        other_seed.push_back(CPE_FAULT_POINT("test.stream"));
    EXPECT_NE(first, other_seed);
}

TEST(FaultInjector, RateOneFiresAlwaysAndGlobFilters)
{
    DisarmGuard guard;
    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=9,rate=1,point=only.this"));
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(CPE_FAULT_POINT("only.this"));
        EXPECT_FALSE(CPE_FAULT_POINT("never.that"));
    }
    auto stats = util::FaultInjector::instance().stats();
    EXPECT_EQ(stats["only.this"].evaluated, 16u);
    EXPECT_EQ(stats["only.this"].fired, 16u);
    EXPECT_EQ(stats["never.that"].evaluated, 16u);
    EXPECT_EQ(stats["never.that"].fired, 0u);

    Json report = util::FaultInjector::instance().statsJson();
    ASSERT_NE(report.find("only.this"), nullptr);
    EXPECT_EQ(report.at("only.this").at("fired").asNumber(), 16);
}

TEST(RetryPolicy, ClassifiesTransientVsDeterministic)
{
    util::RetryPolicy policy;
    EXPECT_TRUE(policy.retryable("io"));
    EXPECT_TRUE(policy.retryable("exception"));
    EXPECT_FALSE(policy.retryable("config"));
    EXPECT_FALSE(policy.retryable("workload"));
    EXPECT_FALSE(policy.retryable("progress"));
    EXPECT_FALSE(policy.retryable("error"));
}

TEST(RetryPolicy, BackoffIsDeterministicJitteredAndBounded)
{
    util::RetryPolicy policy;
    policy.backoffBaseMs = 100;
    policy.backoffFactor = 2.0;
    policy.backoffMaxMs = 350;
    policy.jitterSeed = 7;

    // Pure function of (policy, salt, attempt).
    EXPECT_EQ(policy.delayMs(2, "crc|1p8"), policy.delayMs(2, "crc|1p8"));
    // Jitter scales the exponential schedule into [base/2, base).
    unsigned first = policy.delayMs(2, "crc|1p8");
    EXPECT_GE(first, 50u);
    EXPECT_LT(first, 100u);
    unsigned second = policy.delayMs(3, "crc|1p8");
    EXPECT_GE(second, 100u);
    EXPECT_LT(second, 200u);
    // The cap bounds the raw delay before jitter.
    unsigned fifth = policy.delayMs(6, "crc|1p8");
    EXPECT_LT(fifth, 350u);
    // Different runs de-synchronize.
    bool differs = false;
    for (const char *salt : {"copy|1p8", "crc|2p8", "saxpy|1p16"})
        differs = differs || policy.delayMs(2, salt) != first;
    EXPECT_TRUE(differs);

    // Base 0 = the historical retry-immediately behavior.
    util::RetryPolicy immediate;
    EXPECT_EQ(immediate.delayMs(2, "crc|1p8"), 0u);
    // Attempt 1 is the first try, never delayed.
    EXPECT_EQ(policy.delayMs(1, "crc|1p8"), 0u);
}

sim::SimConfig
chaosConfig(const std::string &workload, bool dual)
{
    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        dual ? core::PortTechConfig::dualPortBase()
             : core::PortTechConfig::singlePortAllTechniques();
    config.label = dual ? "dual" : "techniques";
    return config;
}

/** The 2x2 acceptance grid: 2 workloads x 2 port variants. */
std::vector<sim::SimConfig>
chaosGrid()
{
    std::vector<sim::SimConfig> configs;
    for (const char *workload : {"crc", "copy"})
        for (bool dual : {false, true})
            configs.push_back(chaosConfig(workload, dual));
    return configs;
}

TEST(Chaos, InjectedSweepFaultIsRetriedThenSucceeds)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    // Find a seed whose sweep.run stream starts (fire, pass): the
    // first attempt dies with the injected IoError, the retry lands.
    std::uint64_t seed = 0;
    bool found = false;
    for (std::uint64_t candidate = 0; candidate < 512; ++candidate) {
        util::FaultInjector::instance().arm(util::ChaosSpec::parse(
            "seed=" + std::to_string(candidate) +
            ",rate=0.5,point=sweep.run"));
        bool first = CPE_FAULT_POINT("sweep.run");
        bool second = CPE_FAULT_POINT("sweep.run");
        if (first && !second) {
            seed = candidate;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no (fire, pass) seed below 512";

    // Re-arm to reset the counters, then run: attempt 1 consumes the
    // firing draw, the retry consumes the passing one.
    util::FaultInjector::instance().arm(util::ChaosSpec::parse(
        "seed=" + std::to_string(seed) + ",rate=0.5,point=sweep.run"));
    auto outcomes =
        sim::SweepRunner(1).runOutcomes({chaosConfig("crc", false)});
    util::FaultInjector::instance().disarm();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].attempts, 2u);

    // Bit-identical to the fault-free run despite the mid-flight retry.
    sim::SimResult clean = sim::simulate(chaosConfig("crc", false));
    EXPECT_EQ(sim::resultToJson(outcomes[0].result).dump(),
              sim::resultToJson(clean).dump());
}

TEST(Chaos, ExhaustedRetriesSurfaceStructuredIoError)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=1,rate=1,point=sweep.run"));
    sim::SweepRunner runner(1);
    util::RetryPolicy policy;
    policy.maxAttempts = 3;
    runner.setRetryPolicy(policy);
    auto outcomes = runner.runOutcomes({chaosConfig("crc", false)});
    util::FaultInjector::instance().disarm();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].errorKind, "io");
    EXPECT_EQ(outcomes[0].attempts, 3u);
    EXPECT_NE(outcomes[0].errorMessage.find("sweep.run"),
              std::string::npos);
}

/**
 * The chaos invariant, over the acceptance schedule matrix (20 seeds x
 * 3 rates over the 2x2 grid): every outcome either carries a result
 * bit-identical to its fault-free twin or a structured error of a
 * known kind.  Serial workers so each schedule's decision stream maps
 * to runs deterministically (see the determinism caveat in fault.hh).
 */
TEST(Chaos, SweepInvariantUnderScheduleMatrix)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    util::FaultInjector::instance().disarm();

    // Fault-free goldens, one per grid cell.
    std::map<std::string, std::string> golden;
    for (const auto &config : chaosGrid())
        golden[config.workloadName + "|" + config.tag()] =
            sim::resultToJson(sim::simulate(config)).dump();

    unsigned succeeded = 0;
    unsigned failed = 0;
    for (unsigned seed = 0; seed < 20; ++seed) {
        for (const char *rate : {"0.02", "0.1", "0.5"}) {
            util::FaultInjector::instance().arm(util::ChaosSpec::parse(
                "seed=" + std::to_string(seed) + ",rate=" +
                std::string(rate)));
            // A fresh spill-less cache per schedule keeps runs
            // independent of earlier schedules' failures.
            sim::TraceCache cache;
            auto configs = chaosGrid();
            for (auto &config : configs)
                config.traceCache = &cache;
            auto outcomes = sim::SweepRunner(1).runOutcomes(configs);
            ASSERT_EQ(outcomes.size(), 4u);
            for (const auto &outcome : outcomes) {
                std::string cell =
                    outcome.workload + "|" + outcome.configTag;
                if (outcome.ok()) {
                    ++succeeded;
                    EXPECT_EQ(sim::resultToJson(outcome.result).dump(),
                              golden[cell])
                        << "seed=" << seed << " rate=" << rate << " "
                        << cell;
                } else {
                    ++failed;
                    EXPECT_TRUE(outcome.errorKind == "io" ||
                                outcome.errorKind == "exception")
                        << outcome.errorKind << ": "
                        << outcome.errorMessage;
                    EXPECT_FALSE(outcome.errorMessage.empty());
                    EXPECT_NE(outcome.errorJson().find("kind"), nullptr);
                }
            }
        }
    }
    util::FaultInjector::instance().disarm();
    // The matrix must actually exercise both arms of the invariant.
    EXPECT_GT(succeeded, 0u);
    EXPECT_GT(failed, 0u);
}

TEST(Chaos, DisarmedSweepByteIdenticalToFaultFree)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    // Golden: a grid from a process state that never armed (as far as
    // this test can arrange — disarm is specified to leave no trace).
    util::FaultInjector::instance().disarm();
    std::string golden =
        sim::SweepRunner(1).runGrid(chaosGrid()).toJson().dump(2);

    // Arm, churn the decision stream, disarm — then the same grid must
    // come out byte-identical.
    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=3,rate=1"));
    for (int i = 0; i < 32; ++i)
        (void)CPE_FAULT_POINT("trace_cache.spill_write");
    util::FaultInjector::instance().disarm();
    std::string after =
        sim::SweepRunner(1).runGrid(chaosGrid()).toJson().dump(2);
    EXPECT_EQ(golden, after);
}

/**
 * The invariant under parallel workers (the tsan.Chaos lane): which
 * run sees which draw is schedule-dependent, but every outcome must
 * still be fault-free-identical or structured.
 */
TEST(Chaos, ParallelSweepInvariantHolds)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    util::FaultInjector::instance().disarm();
    std::map<std::string, std::string> golden;
    for (const auto &config : chaosGrid())
        golden[config.workloadName + "|" + config.tag()] =
            sim::resultToJson(sim::simulate(config)).dump();

    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=11,rate=0.2"));
    sim::TraceCache cache;
    auto configs = chaosGrid();
    for (auto &config : configs)
        config.traceCache = &cache;
    auto outcomes = sim::SweepRunner(4).runOutcomes(configs);
    util::FaultInjector::instance().disarm();
    ASSERT_EQ(outcomes.size(), 4u);
    for (const auto &outcome : outcomes) {
        if (outcome.ok())
            EXPECT_EQ(sim::resultToJson(outcome.result).dump(),
                      golden[outcome.workload + "|" + outcome.configTag]);
        else
            EXPECT_TRUE(outcome.errorKind == "io" ||
                        outcome.errorKind == "exception")
                << outcome.errorKind;
    }
}

/**
 * The chaos invariant extended over the serving layer: with every
 * serve.* seam armed — request reads, response writes, store reads,
 * store writes — a served grid's result records are still byte-
 * identical to their fault-free twins, failures surface as structured
 * error records or a cleanly dropped connection (never a crash or a
 * wrong number), and a disarmed rerun over the same store serves the
 * full grid byte-identically.
 */
TEST(Chaos, ServedGridInvariantUnderServeFaults)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    util::FaultInjector::instance().disarm();

    // Fault-free reference results, computed directly (no server).
    std::map<std::string, std::string> golden;
    for (const char *workload : {"crc", "copy"})
        golden[workload] =
            sim::resultToJson(sim::simulate(chaosConfig(workload, false)))
                .dump();

    auto scratch = std::filesystem::temp_directory_path() /
                   ("cpe_chaos_serve." + std::to_string(::getpid()));
    std::filesystem::remove_all(scratch);
    std::filesystem::create_directories(scratch);
    serve::ResultStore store((scratch / "store").string());
    serve::ServerOptions options;
    options.socketPath = (scratch / "sock").string();
    options.jobs = 1;
    serve::Server server(options, &store);
    server.start();

    serve::SweepRequest request;
    request.machineText = sim::toMachineFile(chaosConfig("crc", false));
    request.workloads = {"crc", "copy"};

    // One sweep request; records checked against the reference as they
    // stream.  A mid-stream connection loss (an injected read/write
    // fault) is a tolerated outcome — the next request starts fresh.
    auto served_sweep = [&](unsigned &checked, unsigned &errors) {
        serve::Client client(options.socketPath);
        Json terminal = client.sweep(request, [&](const Json &record) {
            const Json *type = record.find("t");
            if (!type || !type->isString())
                return;
            if (type->asString() == "result") {
                const Json &result =
                    record.at("result", "result record");
                std::string workload =
                    result.at("workload", "result").asString();
                EXPECT_EQ(result.dump(), golden[workload])
                    << "served result diverged for " << workload;
                ++checked;
            } else if (type->asString() == "error") {
                // Run- or request-level: structured either way.
                EXPECT_TRUE(record.find("kind"));
                EXPECT_TRUE(record.find("message"));
                ++errors;
            }
        });
        const Json *type = terminal.find("t");
        return type && type->isString() && type->asString() == "done";
    };

    unsigned checked = 0;
    unsigned errors = 0;
    unsigned dropped = 0;
    for (unsigned seed : {7u, 8u, 9u}) {
        for (const char *points :
             {"serve.store_*", "serve.request_read",
              "serve.response_write", "serve.*"}) {
            util::FaultInjector::instance().arm(util::ChaosSpec::parse(
                "seed=" + std::to_string(seed) + ",rate=0.2,point=" +
                std::string(points)));
            try {
                served_sweep(checked, errors);
            } catch (const SimError &error) {
                // The connection died mid-stream (injected read or
                // write fault): tolerated, but only as an "io" loss.
                EXPECT_EQ(std::string(error.kind()), "io")
                    << error.what();
                ++dropped;
            }
        }
    }
    auto injector_stats = util::FaultInjector::instance().stats();
    util::FaultInjector::instance().disarm();

    // The matrix must have actually reached the serving seams.
    EXPECT_GT(injector_stats.count("serve.store_read") +
                  injector_stats.count("serve.store_write") +
                  injector_stats.count("serve.request_read") +
                  injector_stats.count("serve.response_write"),
              0u);
    EXPECT_GT(checked, 0u) << "no served result was ever checked";

    // Disarmed, the same server over the same store serves the full
    // grid byte-identically — whatever the chaos matrix left behind.
    unsigned clean_checked = 0;
    unsigned clean_errors = 0;
    EXPECT_TRUE(served_sweep(clean_checked, clean_errors));
    EXPECT_EQ(clean_checked, 2u);
    EXPECT_EQ(clean_errors, 0u);

    server.stop();
    std::filesystem::remove_all(scratch);
}

TEST(Chaos, SpillCircuitBreakerDegradesToMemoryOnly)
{
    VerboseScope quiet(false);
    DisarmGuard guard;
    auto spill_dir = std::filesystem::temp_directory_path() /
                     "cpe_chaos_breaker_test";
    std::filesystem::remove_all(spill_dir);

    // Every spill write fails: after the threshold the cache must stop
    // touching the disk and keep serving from memory.
    util::FaultInjector::instance().arm(util::ChaosSpec::parse(
        "seed=5,rate=1,point=trace_cache.spill_write"));
    sim::TraceCache cache(spill_dir.string());
    std::vector<std::string> workloads = {"crc", "copy", "histogram",
                                          "saxpy"};
    for (const auto &workload : workloads) {
        sim::SimConfig config = chaosConfig(workload, false);
        config.traceCache = &cache;
        sim::SimResult result = sim::simulate(config);
        EXPECT_GT(result.insts, 0u) << workload;
    }
    util::FaultInjector::instance().disarm();

    EXPECT_TRUE(cache.degraded());
    EXPECT_GE(cache.stats().spillFailures,
              sim::TraceCache::SpillBreakerThreshold);
    // Memory-side behavior is untouched: every workload captured once.
    EXPECT_EQ(cache.stats().captures, workloads.size());
    // Degraded means no spill files ever landed.
    unsigned spilled = 0;
    std::error_code ec;
    for (auto it = std::filesystem::directory_iterator(spill_dir, ec);
         !ec && it != std::filesystem::directory_iterator(); ++it)
        ++spilled;
    EXPECT_EQ(spilled, 0u);
    std::filesystem::remove_all(spill_dir);
}

TEST(Chaos, OrphanedSpillTmpFilesAreSweptOnConstruction)
{
    VerboseScope quiet(false);
    auto spill_dir = std::filesystem::temp_directory_path() /
                     "cpe_chaos_orphan_test";
    std::filesystem::remove_all(spill_dir);
    std::filesystem::create_directories(spill_dir);
    // A crash mid-spill leaves "<trace>.cpet.tmp.<pid>" behind.
    {
        std::ofstream orphan(spill_dir / "deadbeef.cpet.tmp.1234");
        orphan << "torn";
    }
    {
        std::ofstream keeper(spill_dir / "cafef00d.cpet");
        keeper << "not a real capture, but not a tmp file either";
    }

    sim::TraceCache cache(spill_dir.string());
    EXPECT_FALSE(
        std::filesystem::exists(spill_dir / "deadbeef.cpet.tmp.1234"));
    EXPECT_TRUE(std::filesystem::exists(spill_dir / "cafef00d.cpet"));
    std::filesystem::remove_all(spill_dir);
}

} // namespace
} // namespace cpe
