/**
 * @file
 * Property tests on generated random programs.  A constrained
 * generator emits terminating programs full of random ALU ops, guarded
 * loads/stores, forward branches, mode switches, and calls; each seed
 * is then used to check system-level invariants:
 *
 *   1. the timing core commits exactly the functional instruction
 *      count and never deadlocks, under *every* port configuration;
 *   2. timing results are deterministic;
 *   3. the binary encoding round-trips at whole-program granularity:
 *      executing decode(encode(P)) produces the same architectural
 *      state as executing P;
 *   4. cycle counts respect machine bounds (cycles >= insts / width).
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "func/executor.hh"
#include "isa/encoding.hh"
#include "prog/builder.hh"
#include "util/random.hh"

namespace cpe {
namespace {

using namespace prog::reg;
using prog::Builder;
using prog::Label;
using prog::Program;

/**
 * Generate a terminating random program: an outer loop of fixed trip
 * count whose body is random straight-line code with guarded memory
 * accesses and forward branches.
 */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Builder b("random_" + std::to_string(seed));

    Addr data = b.allocData(4096, 64);
    for (unsigned off = 0; off < 4096; off += 8)
        b.setData64(data + off, rng.next64());

    // Work registers the generator draws from.
    const RegIndex pool[] = {t0, t1, t2, t3, s1, s2, s3, s4};
    auto any = [&]() { return pool[rng.below(8)]; };
    auto any_f = [&]() { return f(1 + rng.below(6)); };

    b.loadImm(s0, 16 + rng.below(16));  // outer trip count
    b.loadImm(s5, data);                // data base (never clobbered)
    b.fcvtI2f(f(0), s0);                // seed an FP value

    Label loop = b.here();

    unsigned body = 24 + static_cast<unsigned>(rng.below(32));
    for (unsigned i = 0; i < body; ++i) {
        switch (rng.below(10)) {
          case 0:
          case 1:  // reg-reg ALU
            switch (rng.below(6)) {
              case 0: b.add(any(), any(), any()); break;
              case 1: b.sub(any(), any(), any()); break;
              case 2: b.xor_(any(), any(), any()); break;
              case 3: b.and_(any(), any(), any()); break;
              case 4: b.mul(any(), any(), any()); break;
              case 5: b.sltu(any(), any(), any()); break;
            }
            break;
          case 2:  // ALU immediate
            b.addi(any(), any(), rng.range(-512, 512));
            break;
          case 3: {  // guarded load (aligned, within the data region)
            RegIndex addr_reg = t4;
            b.andi(addr_reg, any(), 0x7f8);
            b.add(addr_reg, s5, addr_reg);
            switch (rng.below(4)) {
              case 0: b.ld(any(), 0, addr_reg); break;
              case 1: b.lw(any(), 4, addr_reg); break;
              case 2: b.lhu(any(), 2, addr_reg); break;
              case 3: b.lbu(any(), rng.below(8), addr_reg); break;
            }
            break;
          }
          case 4: {  // guarded store
            RegIndex addr_reg = t4;
            b.andi(addr_reg, any(), 0x7f8);
            b.add(addr_reg, s5, addr_reg);
            switch (rng.below(3)) {
              case 0: b.sd(any(), 0, addr_reg); break;
              case 1: b.sw(any(), 4, addr_reg); break;
              case 2: b.sb(any(), rng.below(8), addr_reg); break;
            }
            break;
          }
          case 5: {  // data-dependent forward branch over 1-2 insts
            Label skip = b.newLabel();
            switch (rng.below(3)) {
              case 0: b.beq(any(), any(), skip); break;
              case 1: b.blt(any(), any(), skip); break;
              case 2: b.bgeu(any(), any(), skip); break;
            }
            b.addi(any(), any(), 1);
            if (rng.chance(0.5))
                b.xor_(any(), any(), any());
            b.bind(skip);
            break;
          }
          case 6:  // FP work
            switch (rng.below(4)) {
              case 0: b.fadd(any_f(), any_f(), any_f()); break;
              case 1: b.fmul(any_f(), any_f(), any_f()); break;
              case 2: b.fsub(any_f(), any_f(), any_f()); break;
              case 3: b.fcvtI2f(any_f(), any()); break;
            }
            break;
          case 7:  // shifts
            if (rng.chance(0.5))
                b.slli(any(), any(), static_cast<unsigned>(rng.below(32)));
            else
                b.srli(any(), any(), static_cast<unsigned>(rng.below(32)));
            break;
          case 8:  // occasional kernel-mode episode
            if (rng.chance(0.3)) {
                b.emode();
                b.addi(any(), any(), 3);
                b.xmode();
            } else {
                b.nop();
            }
            break;
          case 9:  // read-modify-write on a fixed slot
            b.ld(t5, 0, s5);
            b.addi(t5, t5, 1);
            b.sd(t5, 0, s5);
            break;
        }
    }

    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop);

    // Fold live state into one register so equivalence checks have a
    // single observable, then halt.
    b.add(s1, s1, s2);
    b.add(s1, s1, s3);
    b.add(s1, s1, s4);
    b.halt();
    return b.build();
}

class RandomProgram : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomProgram, TimingCoreCommitsFunctionalStream)
{
    Program program = randomProgram(GetParam());
    func::Executor golden(program);
    std::uint64_t golden_count = golden.run();
    ASSERT_GT(golden_count, 100u);

    const core::PortTechConfig configs[] = {
        core::PortTechConfig::singlePortBase(),
        core::PortTechConfig::dualPortBase(),
        core::PortTechConfig::singlePortAllTechniques(),
    };
    for (const auto &tech : configs) {
        cpu::CoreParams params;
        params.dcache.tech = tech;
        params.maxCycles = 50'000'000;  // deadlock fuse
        func::Executor executor(program);
        mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
        cpu::OooCore core(params, &executor, &hierarchy);
        Cycle cycles = core.run();

        EXPECT_EQ(core.committedInsts(), golden_count)
            << tech.describe();
        EXPECT_GE(cycles, golden_count / params.commitWidth)
            << tech.describe();
        EXPECT_FALSE(core.dcache().busy()) << tech.describe();
    }
}

TEST_P(RandomProgram, TimingIsDeterministic)
{
    Program program = randomProgram(GetParam());
    auto run = [&]() {
        cpu::CoreParams params;
        params.dcache.tech =
            core::PortTechConfig::singlePortAllTechniques();
        func::Executor executor(program);
        mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
        cpu::OooCore core(params, &executor, &hierarchy);
        return core.run();
    };
    EXPECT_EQ(run(), run());
}

TEST_P(RandomProgram, EncodingRoundTripsWholeProgram)
{
    Program program = randomProgram(GetParam());

    // Encode every instruction to binary and decode it back.
    auto words = program.encodedText();
    std::vector<isa::Inst> decoded;
    decoded.reserve(words.size());
    for (std::uint32_t word : words) {
        auto inst = isa::decode(word);
        ASSERT_TRUE(inst.has_value());
        decoded.push_back(*inst);
    }
    Program reprogram("redecoded", program.textBase(),
                      std::move(decoded),
                      {program.data().begin(), program.data().end()});

    func::Executor original(program);
    func::Executor redecoded(reprogram);
    std::uint64_t count_a = original.run();
    std::uint64_t count_b = redecoded.run();
    EXPECT_EQ(count_a, count_b);
    EXPECT_TRUE(original.state().sameAs(redecoded.state()))
        << "architectural state diverged after encode/decode:\n"
        << original.state().dump() << "vs\n"
        << redecoded.state().dump();
    // Memory result slot (RMW counter at the data base) agrees too.
    EXPECT_EQ(original.memory().read(prog::layout::DataBase, 8),
              redecoded.memory().read(prog::layout::DataBase, 8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Values(1, 7, 42, 99, 1234, 5678,
                                           31337, 271828, 314159,
                                           1996));

} // namespace
} // namespace cpe
