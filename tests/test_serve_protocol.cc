/**
 * @file
 * The cpe_serve wire protocol: junk requests become structured error
 * records (never a server crash — the same connection keeps working),
 * torn/partial frames are reassembled or discarded cleanly, request
 * parsing rejects bad member types with ConfigError, and every record
 * schema is pinned — field by field — against a committed golden file
 * (regenerate with CPE_REGEN_GOLDEN=1 and commit the new file).
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/result_store.hh"
#include "serve/server.hh"
#include "util/error.hh"
#include "util/logging.hh"

#ifndef CPE_GOLDEN_DIR
#error "CPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace cpe {
namespace {

/** An in-process server on a scratch socket + store, torn down last. */
struct ScratchServer
{
    std::filesystem::path dir;
    serve::ResultStore store;
    serve::Server server;

    explicit ScratchServer(const std::string &name)
        : dir(std::filesystem::temp_directory_path() /
              (name + "." + std::to_string(::getpid()))),
          store((std::filesystem::remove_all(dir),
                 std::filesystem::create_directories(dir),
                 (dir / "store").string())),
          server(
              [this]() {
                  serve::ServerOptions options;
                  options.socketPath = (dir / "sock").string();
                  options.jobs = 1;
                  return options;
              }(),
              &store)
    {
        server.start();
    }

    ~ScratchServer()
    {
        server.stop();
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string socket() const { return (dir / "sock").string(); }
};

std::string
member(const Json &doc, const char *key)
{
    const Json *value = doc.find(key);
    return value && value->isString() ? value->asString() : std::string();
}

TEST(ServeProtocol, LineReaderReassemblesArbitraryChunks)
{
    serve::LineReader reader;
    std::string line;
    EXPECT_FALSE(reader.next(line));

    // One frame delivered a byte at a time.
    const std::string frame = "{\"t\":\"ping\"}\n";
    for (char c : frame) {
        EXPECT_FALSE(reader.next(line)) << "no early frame";
        reader.append(&c, 1);
    }
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "{\"t\":\"ping\"}");
    EXPECT_FALSE(reader.next(line));
    EXPECT_EQ(reader.pendingBytes(), 0u);

    // Two frames plus a torn tail in one chunk.
    const std::string chunk = "{\"a\":1}\n{\"b\":2}\n{\"torn";
    reader.append(chunk.data(), chunk.size());
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "{\"a\":1}");
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "{\"b\":2}");
    EXPECT_FALSE(reader.next(line)) << "torn tail is held, not parsed";
    EXPECT_EQ(reader.pendingBytes(), 6u);

    // The tail completes when its newline finally arrives.
    reader.append("\":3}\n", 5);
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "{\"torn\":3}");
}

TEST(ServeProtocol, SweepRequestJsonRoundTrips)
{
    serve::SweepRequest request;
    request.experiment = "F5";
    request.machineText = "workload = crc\n";
    request.workloads = {"crc", "copy"};
    request.jobs = 3;
    request.retries = 2;

    serve::SweepRequest back =
        serve::SweepRequest::fromJson(request.toJson());
    EXPECT_EQ(back.experiment, request.experiment);
    EXPECT_EQ(back.machineText, request.machineText);
    EXPECT_EQ(back.workloads, request.workloads);
    EXPECT_EQ(back.jobs, request.jobs);
    EXPECT_EQ(back.retries, request.retries);
}

TEST(ServeProtocol, SweepRequestRejectsBadMemberTypes)
{
    auto parse = [](const std::string &text) {
        return serve::SweepRequest::fromJson(
            Json::parse(text, "request"));
    };
    EXPECT_THROW(parse("[1,2,3]"), ConfigError) << "not an object";
    EXPECT_THROW(parse("{\"t\":\"sweep\",\"experiment\":7}"),
                 ConfigError);
    EXPECT_THROW(parse("{\"t\":\"sweep\",\"workloads\":\"crc\"}"),
                 ConfigError)
        << "workloads must be an array";
    EXPECT_THROW(parse("{\"t\":\"sweep\",\"workloads\":[1]}"),
                 ConfigError);
    EXPECT_THROW(
        parse("{\"t\":\"sweep\",\"experiment\":\"F5\",\"jobs\":-1}"),
        ConfigError);
    EXPECT_THROW(
        parse("{\"t\":\"sweep\",\"experiment\":\"F5\",\"jobs\":1.5}"),
        ConfigError);
    EXPECT_THROW(parse("{\"t\":\"sweep\"}"), ConfigError)
        << "an empty request names nothing to run";
}

TEST(ServeProtocol, JunkRequestsGetStructuredErrorsNeverACrash)
{
    VerboseScope quiet(false);
    ScratchServer scratch("cpe_serve_protocol_junk");
    serve::Client client(scratch.socket());

    // Unparseable JSON.
    Json reply = client.roundTripLine("this is not json");
    EXPECT_EQ(member(reply, "t"), "error");
    EXPECT_EQ(member(reply, "kind"), "config");
    EXPECT_FALSE(reply.find("run")) << "request-level error";

    // Parseable, but not an object / unknown type / bad members.
    reply = client.roundTripLine("[1,2,3]");
    EXPECT_EQ(member(reply, "t"), "error");
    reply = client.roundTripLine("{\"t\":\"frobnicate\"}");
    EXPECT_EQ(member(reply, "t"), "error");
    EXPECT_NE(member(reply, "message").find("frobnicate"),
              std::string::npos);
    reply = client.roundTripLine("{\"t\":\"sweep\",\"workloads\":42}");
    EXPECT_EQ(member(reply, "t"), "error");

    // Unknown experiment / workload ids are rejected with the ids
    // spelled out, not with a dead connection.
    reply = client.roundTripLine(
        "{\"t\":\"sweep\",\"experiment\":\"Z9\"}");
    EXPECT_EQ(member(reply, "t"), "error");
    EXPECT_EQ(member(reply, "kind"), "config");
    reply = client.roundTripLine(
        "{\"t\":\"sweep\",\"workloads\":[\"no_such_kernel\"]}");
    EXPECT_EQ(member(reply, "t"), "error");
    EXPECT_NE(member(reply, "message").find("no_such_kernel"),
              std::string::npos);

    // After all of that abuse, the same connection still serves.
    EXPECT_TRUE(client.ping()) << "server survived every junk request";
}

TEST(ServeProtocol, TornFrameOnDisconnectIsTolerated)
{
    VerboseScope quiet(false);
    ScratchServer scratch("cpe_serve_protocol_torn");
    {
        // A client that dies mid-frame: raw socket, half a request, no
        // newline, then gone.  The partial line must be discarded, not
        // parsed or crashed on.
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, scratch.socket().c_str(),
                     sizeof(addr.sun_path) - 1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        const char torn[] = "{\"t\":\"sweep\", \"experiment\": \"F5";
        ASSERT_GT(::send(fd, torn, sizeof(torn) - 1, MSG_NOSIGNAL), 0);
        // Give the server a moment to buffer the torn bytes before the
        // EOF that abandons them.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        ::close(fd);
    }
    serve::Client fresh(scratch.socket());
    EXPECT_TRUE(fresh.ping()) << "server alive after torn traffic";
}

TEST(ServeProtocol, RecordSchemasMatchCommittedGolden)
{
    // One record of every type, built from fixed inputs, so any schema
    // change — field added, renamed, reordered — shows up as a diff.
    serve::SweepRequest request;
    request.experiment = "F5";
    request.workloads = {"crc"};
    request.retries = 1;

    sim::SimResult result;
    result.workload = "crc";
    result.configTag = "golden";
    result.cycles = 100;
    result.insts = 250;
    result.ipc = 2.5;
    result.statsDump = "golden stats";
    result.statsJson = "{\"golden\":true}";

    serve::RequestTally tally;
    tally.runs = 2;
    tally.storeHits = 1;
    tally.simulated = 1;

    // The metrics record's snapshot comes from a fixed test-local
    // registry — never the process-wide one, whose values depend on
    // which tests ran before this one.
    obs::MetricsRegistry registry;
    registry.counter("serve.requests", "sweep requests accepted")
        ->inc(2);
    registry.gauge("serve.in_flight_requests", "sweeps in flight")
        ->set(1);
    obs::Histogram *latency = registry.histogram(
        "serve.request_latency_us.sweep", {100.0, 1000.0},
        "sweep latency");
    latency->observe(50.0);
    latency->observe(500.0);
    latency->observe(5000.0);
    Json snapshot = Json::object();
    snapshot["uptime_ms"] = 1234.0;
    snapshot["metrics"] = registry.snapshotJson();
    Json chaos_point = Json::object();
    chaos_point["evaluated"] = 3.0;
    chaos_point["fired"] = 1.0;
    Json chaos = Json::object();
    chaos["sweep.run"] = std::move(chaos_point);
    snapshot["chaos"] = std::move(chaos);

    std::vector<Json> records;
    records.push_back(request.toJson());
    records.push_back(serve::acceptedRecord(request, 2, "r-1"));
    records.push_back(serve::progressRecord(1, 2, "crc", "golden"));
    records.push_back(serve::resultRecord(1, result, "sim"));
    records.push_back(
        serve::runErrorRecord(2, "crc", "golden", "io", "disk fell off"));
    records.push_back(
        serve::requestErrorRecord("config", "unknown experiment"));
    records.push_back(serve::metricsRecord(snapshot));
    records.push_back(serve::doneRecord(tally));

    std::string rendered;
    for (const Json &record : records) {
        rendered += record.dump();
        rendered += '\n';
    }

    const std::string path =
        std::string(CPE_GOLDEN_DIR) + "/serve_protocol.jsonl";
    if (std::getenv("CPE_REGEN_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (generate with CPE_REGEN_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(rendered, buffer.str())
        << "record schema changed; regenerate the golden file if "
           "intentional";
}

} // namespace
} // namespace cpe
