/**
 * @file
 * Machine-file parser tests: key coverage across every section,
 * defaults preservation, comment handling, and strict error reporting
 * for typos.
 */

#include <gtest/gtest.h>

#include "sim/config_file.hh"
#include "sim/simulator.hh"

namespace cpe::sim {
namespace {

TEST(ConfigFile, EmptyFileYieldsDefaults)
{
    auto parsed = parseConfig("");
    ASSERT_TRUE(parsed) << parsed.error;
    SimConfig defaults = SimConfig::defaults();
    EXPECT_EQ(parsed.config.workloadName, defaults.workloadName);
    EXPECT_EQ(parsed.config.core.issueWidth, defaults.core.issueWidth);
    EXPECT_EQ(parsed.config.tech().ports, defaults.tech().ports);
}

TEST(ConfigFile, FullMachineDescription)
{
    auto parsed = parseConfig(R"(
# The paper's headline configuration, as a machine file.
workload = copy
os_level = 1
scale = 2
seed = 7
warmup_insts = 1000
label = headline

[core]
issue_width = 8
rename_width = 8
commit_width = 8
fetch_width = 8
rob = 128
iq = 64
lq = 32
sq = 32
decode_latency = 3
redirect_penalty = 4

[bpred]
kind = bimodal
table_entries = 1024
btb_entries = 256
ras = 16

[l1d]
size_kib = 32
assoc = 4
line = 32
hit_latency = 2
mshrs = 16
victim_entries = 4
prefetch_next_line = true

[l1i]
size_kib = 32
assoc = 1

[tech]
ports = 1
width = 32
banks = 2
store_buffer = 8
combining = true
drain = threshold
drain_threshold = 6
line_buffers = 4
line_buffer_write = invalidate
flush_on_mode_switch = false
fill = dedicated
fill_cycles = 3

[l2]
size_kib = 1024
assoc = 8
hit_latency = 10

[dram]
latency = 80
cycles_per_line = 8
    )");
    ASSERT_TRUE(parsed) << parsed.error;
    const SimConfig &config = parsed.config;

    EXPECT_EQ(config.workloadName, "copy");
    EXPECT_EQ(config.workload.osLevel, 1u);
    EXPECT_EQ(config.workload.scale, 2u);
    EXPECT_EQ(config.workload.seed, 7u);
    EXPECT_EQ(config.warmupInsts, 1000u);
    EXPECT_EQ(config.label, "headline");

    EXPECT_EQ(config.core.issueWidth, 8u);
    EXPECT_EQ(config.core.robSize, 128u);
    EXPECT_EQ(config.core.lsq.loadEntries, 32u);
    EXPECT_EQ(config.core.decodeLatency, 3u);
    EXPECT_EQ(config.core.fetch.redirectPenalty, 4u);

    EXPECT_EQ(config.core.bpred.kind, cpu::PredictorKind::Bimodal);
    EXPECT_EQ(config.core.bpred.rasEntries, 16u);

    EXPECT_EQ(config.core.dcache.cache.sizeBytes, 32u * 1024);
    EXPECT_EQ(config.core.dcache.cache.assoc, 4u);
    EXPECT_EQ(config.core.dcache.hitLatency, 2u);
    EXPECT_EQ(config.core.dcache.victimEntries, 4u);
    EXPECT_TRUE(config.core.dcache.nextLinePrefetch);
    EXPECT_EQ(config.core.fetch.icache.sizeBytes, 32u * 1024);
    EXPECT_EQ(config.core.fetch.icache.assoc, 1u);

    EXPECT_EQ(config.tech().ports, 1u);
    EXPECT_EQ(config.tech().portWidthBytes, 32u);
    EXPECT_EQ(config.tech().banks, 2u);
    EXPECT_EQ(config.tech().storeBufferEntries, 8u);
    EXPECT_EQ(config.tech().drainPolicy, core::DrainPolicy::Threshold);
    EXPECT_EQ(config.tech().drainThreshold, 6u);
    EXPECT_EQ(config.tech().lineBufferWrite,
              core::LineBufferWritePolicy::Invalidate);
    EXPECT_FALSE(config.tech().flushLineBuffersOnModeSwitch);
    EXPECT_EQ(config.tech().fillPolicy,
              core::FillPolicy::DedicatedFillPort);
    EXPECT_EQ(config.tech().fillOccupancyCycles, 3u);

    EXPECT_EQ(config.l2.cache.sizeBytes, 1024u * 1024);
    EXPECT_EQ(config.dram.latency, 80u);
    EXPECT_EQ(config.dram.cyclesPerLine, 8u);
}

TEST(ConfigFile, ParsedConfigActuallySimulates)
{
    setVerbose(false);
    auto parsed = parseConfig(R"(
workload = crc
[tech]
ports = 2
    )");
    ASSERT_TRUE(parsed) << parsed.error;
    auto result = simulate(parsed.config);
    EXPECT_EQ(result.workload, "crc");
    EXPECT_GT(result.insts, 0u);

    // And it matches the equivalent C++-built configuration exactly.
    auto direct = simulate("crc", core::PortTechConfig::dualPortBase());
    EXPECT_EQ(result.cycles, direct.cycles);
}

TEST(ConfigFile, CommentsAndWhitespace)
{
    auto parsed = parseConfig(
        "  workload = sort   # trailing\n; full-line\n\n[tech]\n"
        "ports=2\n");
    ASSERT_TRUE(parsed) << parsed.error;
    EXPECT_EQ(parsed.config.workloadName, "sort");
    EXPECT_EQ(parsed.config.tech().ports, 2u);
}

TEST(ConfigFile, UnknownSectionIsAnError)
{
    auto parsed = parseConfig("[cachez]\nsize_kib = 16\n");
    EXPECT_FALSE(parsed);
    EXPECT_NE(parsed.error.find("unknown section"), std::string::npos);
    EXPECT_NE(parsed.error.find("line 1"), std::string::npos);
}

TEST(ConfigFile, UnknownKeyIsAnError)
{
    auto parsed = parseConfig("[tech]\nportz = 2\n");
    EXPECT_FALSE(parsed);
    EXPECT_NE(parsed.error.find("portz"), std::string::npos);
    EXPECT_NE(parsed.error.find("line 2"), std::string::npos);
}

TEST(ConfigFile, BadValuesAreErrors)
{
    EXPECT_FALSE(parseConfig("[tech]\nports = many\n"));
    EXPECT_FALSE(parseConfig("[tech]\ncombining = maybe\n"));
    EXPECT_FALSE(parseConfig("[tech]\ndrain = sometimes\n"));
    EXPECT_FALSE(parseConfig("[bpred]\nkind = psychic\n"));
    EXPECT_FALSE(parseConfig("just some text\n"));
    EXPECT_FALSE(parseConfig("[tech\nports = 1\n"));
}

TEST(ConfigFile, SerializationRoundTrips)
{
    // Build a thoroughly non-default config, serialize it, and parse
    // it back: the simulated behaviour must be identical (checked by
    // cycle-exact equality of a run).
    setVerbose(false);
    SimConfig config = SimConfig::defaults();
    config.workloadName = "histogram";
    config.workload.osLevel = 1;
    config.workload.seed = 99;
    config.label = "roundtrip";
    config.core.issueWidth = 2;
    config.core.renameWidth = 2;
    config.core.commitWidth = 2;
    config.core.fetch.fetchWidth = 2;
    config.core.robSize = 32;
    config.core.bpred.kind = cpu::PredictorKind::Local;
    config.core.dcache.cache.assoc = 4;
    config.core.dcache.victimEntries = 4;
    config.core.dcache.nextLinePrefetch = true;
    config.tech() = core::PortTechConfig::singlePortAllTechniques();
    config.tech().drainPolicy = core::DrainPolicy::Threshold;
    config.tech().banks = 2;
    config.l2.hitLatency = 12;
    config.dram.latency = 70;

    std::string text = toMachineFile(config);
    auto parsed = parseConfig(text);
    ASSERT_TRUE(parsed) << parsed.error << "\nfile was:\n" << text;

    auto a = simulate(config);
    auto b = simulate(parsed.config);
    EXPECT_EQ(a.cycles, b.cycles) << text;
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(parsed.config.label, "roundtrip");
}

TEST(ConfigFile, MissingFileReportsError)
{
    auto parsed = loadConfigFile("/nonexistent/machine.ini");
    EXPECT_FALSE(parsed);
    EXPECT_NE(parsed.error.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace cpe::sim
