/**
 * @file
 * Load/store-queue unit tests: capacity, conservative disambiguation,
 * forwarding decisions (full / partial / data-not-ready), and in-order
 * commit bookkeeping — driven directly, without the whole core.
 */

#include <gtest/gtest.h>

#include "cpu/lsq.hh"
#include "cpu/rob.hh"

namespace cpe::cpu {
namespace {

struct LsqRig
{
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    core::DCacheUnit dcache;
    Rob rob{32};
    Lsq lsq;

    LsqRig()
        : dcache(makeDcache(), &hierarchy), lsq(LsqParams{4, 4})
    {
    }

    static core::DCacheParams
    makeDcache()
    {
        core::DCacheParams params;
        params.tech = core::PortTechConfig::dualPortBase();
        return params;
    }

    /** Dispatch a load or store at @p addr into ROB + LSQ. */
    TimingInst *
    addMem(SeqNum seq, bool is_store, Addr addr, unsigned size,
           SeqNum data_producer = 0)
    {
        TimingInst inst;
        inst.di.seq = seq;
        inst.di.inst.op = is_store ? isa::Opcode::SD : isa::Opcode::LD;
        inst.di.cls = is_store ? isa::InstClass::Store
                               : isa::InstClass::Load;
        inst.di.memAddr = addr;
        inst.di.memSize = static_cast<std::uint8_t>(size);
        inst.srcProducer[1] = data_producer;
        TimingInst *stable = rob.push(inst);
        lsq.dispatch(stable);
        return stable;
    }

    /** Mark a store's AGU as done at @p cycle. */
    static void
    aguDone(TimingInst *store, Cycle cycle)
    {
        store->issued = true;
        store->done = true;
        store->doneCycle = cycle;
    }
};

TEST(LsqUnit, CapacityGatesDispatch)
{
    LsqRig rig;
    for (SeqNum seq = 1; seq <= 4; ++seq)
        rig.addMem(seq, false, 0x1000 + 8 * seq, 8);
    EXPECT_FALSE(rig.lsq.canDispatch(false));  // LQ full
    EXPECT_TRUE(rig.lsq.canDispatch(true));    // SQ still open
    for (SeqNum seq = 5; seq <= 8; ++seq)
        rig.addMem(seq, true, 0x2000 + 8 * seq, 8);
    EXPECT_FALSE(rig.lsq.canDispatch(true));
    EXPECT_EQ(rig.lsq.loads(), 4u);
    EXPECT_EQ(rig.lsq.stores(), 4u);
}

TEST(LsqUnit, LoadWaitsForOlderStoreAddress)
{
    LsqRig rig;
    TimingInst *store = rig.addMem(1, true, 0x2000, 8);
    TimingInst *load = rig.addMem(2, false, 0x1000, 8);

    // Older store has not issued its AGU: the load must wait even
    // though the addresses do not overlap.
    rig.dcache.beginCycle(0);
    EXPECT_FALSE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 0));
    EXPECT_EQ(rig.lsq.addrUnknownStalls.value(), 1u);

    LsqRig::aguDone(store, 0);
    EXPECT_TRUE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 1));
}

TEST(LsqUnit, YoungerStoresDoNotBlockOlderLoads)
{
    LsqRig rig;
    TimingInst *load = rig.addMem(1, false, 0x1000, 8);
    rig.addMem(2, true, 0x1000, 8);  // younger store, same address

    rig.dcache.beginCycle(0);
    EXPECT_TRUE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 0));
    EXPECT_EQ(rig.lsq.addrUnknownStalls.value(), 0u);
}

TEST(LsqUnit, FullCoverageForwardsWhenDataReady)
{
    LsqRig rig;
    TimingInst *store = rig.addMem(1, true, 0x3000, 8);
    TimingInst *load = rig.addMem(2, false, 0x3000, 8);
    LsqRig::aguDone(store, 0);

    rig.dcache.beginCycle(1);
    ASSERT_TRUE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 1));
    EXPECT_EQ(rig.lsq.lsqForwards.value(), 1u);
    EXPECT_EQ(load->loadSource, core::LoadSource::StoreBufferFwd);
    EXPECT_EQ(load->doneCycle, 2u);  // 1-cycle forward
    // No cache port was touched.
    EXPECT_EQ(rig.dcache.ports().grants.value(), 0u);
}

TEST(LsqUnit, ForwardWaitsForStoreData)
{
    LsqRig rig;
    // Store's data comes from producer seq 10, which is still in
    // flight.
    TimingInst producer;
    producer.di.seq = 10;
    producer.di.inst.op = isa::Opcode::ADD;
    TimingInst *prod = rig.rob.push(producer);

    TimingInst *store = rig.addMem(11, true, 0x3000, 8, /*data=*/10);
    TimingInst *load = rig.addMem(12, false, 0x3000, 8);
    LsqRig::aguDone(store, 0);

    rig.dcache.beginCycle(1);
    EXPECT_FALSE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 1));
    EXPECT_EQ(rig.lsq.partialStalls.value(), 1u);

    prod->done = true;
    prod->doneCycle = 3;
    EXPECT_TRUE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 3));
    EXPECT_EQ(rig.lsq.lsqForwards.value(), 1u);
}

TEST(LsqUnit, PartialOverlapStalls)
{
    LsqRig rig;
    TimingInst *store = rig.addMem(1, true, 0x3004, 4);  // bytes 4-7
    TimingInst *load = rig.addMem(2, false, 0x3000, 8);  // bytes 0-7
    LsqRig::aguDone(store, 0);

    rig.dcache.beginCycle(1);
    EXPECT_FALSE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 1));
    EXPECT_EQ(rig.lsq.partialStalls.value(), 1u);

    // Once the store commits out of the queue, the load proceeds to
    // the cache (which now holds/fetches the full line).
    rig.lsq.commitStore(store);
    EXPECT_TRUE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 2));
    EXPECT_NE(load->loadSource, core::LoadSource::StoreBufferFwd);
}

TEST(LsqUnit, YoungestOverlappingStoreWins)
{
    LsqRig rig;
    TimingInst *old_store = rig.addMem(1, true, 0x3000, 8);
    TimingInst *new_store = rig.addMem(2, true, 0x3000, 4);  // bytes 0-3
    TimingInst *load = rig.addMem(3, false, 0x3000, 8);
    LsqRig::aguDone(old_store, 0);
    LsqRig::aguDone(new_store, 0);

    // The youngest overlapping store covers the load only partially:
    // forwarding from the older full-width store would return stale
    // bytes 0-3, so the load must wait.
    rig.dcache.beginCycle(1);
    EXPECT_FALSE(rig.lsq.tryIssueLoad(load, rig.dcache, rig.rob, 1));
    EXPECT_EQ(rig.lsq.partialStalls.value(), 1u);

    // A 4-byte load fully inside the youngest store forwards fine.
    TimingInst *narrow = rig.addMem(4, false, 0x3000, 4);
    EXPECT_TRUE(rig.lsq.tryIssueLoad(narrow, rig.dcache, rig.rob, 1));
    EXPECT_EQ(narrow->loadSource, core::LoadSource::StoreBufferFwd);
}

TEST(LsqUnit, CommitsAreInOrder)
{
    LsqRig rig;
    TimingInst *l1 = rig.addMem(1, false, 0x1000, 8);
    TimingInst *s1 = rig.addMem(2, true, 0x2000, 8);
    TimingInst *l2 = rig.addMem(3, false, 0x3000, 8);

    rig.lsq.commitLoad(l1);
    rig.lsq.commitStore(s1);
    rig.lsq.commitLoad(l2);
    EXPECT_EQ(rig.lsq.loads(), 0u);
    EXPECT_EQ(rig.lsq.stores(), 0u);
}

TEST(LsqUnitDeathTest, OutOfOrderCommitPanics)
{
    LsqRig rig;
    rig.addMem(1, false, 0x1000, 8);
    TimingInst *younger = rig.addMem(2, false, 0x2000, 8);
    EXPECT_DEATH(rig.lsq.commitLoad(younger), "in order");
}

} // namespace
} // namespace cpe::cpu
