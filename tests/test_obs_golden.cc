/**
 * @file
 * Golden-trace regression: a tiny deterministic kernel is traced
 * through the full core and the JSONL output compared — line by line,
 * field by field, no tolerances — against a committed reference under
 * tests/golden/.  Any change to event ordering, payloads, or the
 * schema shows up as a diff here and must be intentional (regenerate
 * with CPE_REGEN_GOLDEN=1 and commit the new file).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "cpu/ooo_core.hh"
#include "func/executor.hh"
#include "obs/tracer.hh"
#include "prog/builder.hh"
#include "util/json.hh"

#ifndef CPE_GOLDEN_DIR
#error "CPE_GOLDEN_DIR must point at tests/golden"
#endif

namespace cpe::cpu {
namespace {

using namespace prog::reg;
using prog::Builder;
using prog::Label;

/** A small store/load/evict workout: enough iterations to exercise the
 *  store buffer, line buffers, and MSHR fills, small enough that the
 *  golden file stays reviewable. */
prog::Program
goldenKernel()
{
    Builder b("obs_golden");
    Addr data = b.allocData(512, 8);
    b.loadImm(t0, data);
    b.loadImm(t1, 12);
    Label loop = b.here();
    b.sd(t1, 0, t0);
    b.ld(t2, 0, t0);
    b.sd(t2, 64, t0);
    b.ld(t3, 128, t0);
    b.add(t3, t3, t2);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.halt();
    return b.build();
}

std::string
runGoldenTrace()
{
    prog::Program program = goldenKernel();
    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    CoreParams params;
    params.dcache.tech = core::PortTechConfig::singlePortAllTechniques();
    OooCore core(params, &executor, &hierarchy);

    obs::StringTraceSink sink;
    obs::Tracer tracer;
    tracer.beginRun(&sink, "obs_golden", "single-port+techniques", 0,
                    params.dcache.cache.sets(),
                    params.dcache.cache.lineBytes);
    core.setTracer(&tracer);
    Cycle cycles = core.run();
    tracer.endRun(cycles, core.committedInsts(), core.ipc(),
                  Json::object());
    return sink.text();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(ObsGolden, TraceMatchesCommittedReference)
{
    const std::string path =
        std::string(CPE_GOLDEN_DIR) + "/obs_trace.jsonl";
    std::string trace = runGoldenTrace();

    if (std::getenv("CPE_REGEN_GOLDEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << trace;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (generate with CPE_REGEN_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();

    std::vector<std::string> expected = splitLines(buffer.str());
    std::vector<std::string> actual = splitLines(trace);
    ASSERT_EQ(expected.size(), actual.size())
        << "trace length changed; regenerate the golden file if "
           "intentional";

    for (std::size_t i = 0; i < expected.size(); ++i) {
        Json want = Json::parse(expected[i], "golden line");
        Json got = Json::parse(actual[i], "trace line");
        // Field-by-field: every expected member, exactly, both ways.
        for (const auto &[key, value] : want.members()) {
            const Json *member = got.find(key);
            ASSERT_TRUE(member)
                << "line " << i + 1 << ": missing field '" << key << "'";
            EXPECT_EQ(member->dump(), value.dump())
                << "line " << i + 1 << ": field '" << key << "'";
        }
        for (const auto &[key, value] : got.members())
            EXPECT_TRUE(want.find(key))
                << "line " << i + 1 << ": unexpected field '" << key
                << "' = " << value.dump();
    }
}

TEST(ObsGolden, GoldenRunIsDeterministic)
{
    EXPECT_EQ(runGoldenTrace(), runGoldenTrace());
}

} // namespace
} // namespace cpe::cpu
