/**
 * @file
 * util::ThreadPool unit tests: result delivery in submission order,
 * exception propagation through futures, graceful shutdown under load,
 * and rejection of work after shutdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace cpe::util {
namespace {

TEST(ThreadPool, RunsASingleTask)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() { return 41 + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, ResultsComeBackInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    // Futures are collected in submission order whatever the worker
    // interleaving was — the ordering contract SweepRunner builds on.
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto boom = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    auto fine = pool.submit([]() { return 3; });
    EXPECT_THROW(boom.get(), std::runtime_error);
    // The pool survives a throwing task; later work still runs.
    EXPECT_EQ(fine.get(), 3);
}

TEST(ThreadPool, ExceptionMessageIsPreserved)
{
    ThreadPool pool(1);
    auto future = pool.submit(
        []() { throw std::runtime_error("specific message"); });
    try {
        future.get();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "specific message");
    }
}

TEST(ThreadPool, ShutdownDrainsQueuedWork)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 500; ++i) {
            pool.submit([&completed]() {
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // Destructor-driven shutdown: everything queued must still run.
    }
    EXPECT_EQ(completed.load(), 500);
}

TEST(ThreadPool, ShutdownUnderLoadWithSlowTasks)
{
    std::atomic<int> completed{0};
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
        pool.submit([&completed]() {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            completed.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.shutdown();
    EXPECT_EQ(completed.load(), 64);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPool, ShutdownIsIdempotent)
{
    ThreadPool pool(2);
    pool.submit([]() {}).get();
    pool.shutdown();
    pool.shutdown();
}

TEST(ThreadPool, SubmitAfterShutdownThrows)
{
    ThreadPool pool(2);
    pool.shutdown();
    EXPECT_THROW(pool.submit([]() { return 1; }), std::runtime_error);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ConcurrentSubmitters)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &completed]() {
            for (int i = 0; i < 100; ++i) {
                pool.submit([&completed]() {
                    completed.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &thread : submitters)
        thread.join();
    pool.shutdown();
    EXPECT_EQ(completed.load(), 400);
}

} // namespace
} // namespace cpe::util
