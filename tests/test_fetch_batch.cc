/**
 * @file
 * FetchUnit fill-buffer edge cases: the FillBatch block-consumption
 * contract (short fills latch exhaustion), batches narrower than the
 * fetch width, and the squashAndDrain() cursor-repositioning contract
 * the sampled mode's phase boundaries rely on — every
 * fetched-but-unconsumed record handed back in stream order, stall
 * state reset, and the exhaustion latch cleared for re-detection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/fetch.hh"
#include "func/trace.hh"
#include "isa/isa.hh"

namespace cpe::cpu {
namespace {

/** A synthesized ALU record at @p pc with commit order @p seq. */
func::DynInst
aluRecord(SeqNum seq, Addr pc)
{
    func::DynInst di;
    di.seq = seq;
    di.pc = pc;
    di.inst = {isa::Opcode::ADDI, 5, 5, 0, 1};
    di.cls = isa::classOf(di.inst.op);
    di.nextPc = pc + isa::InstBytes;
    return di;
}

/** @p count straight-line ALU records starting at 0x1000. */
std::vector<func::DynInst>
straightTrace(std::size_t count)
{
    std::vector<func::DynInst> trace;
    Addr pc = 0x1000;
    for (std::size_t i = 0; i < count; ++i, pc += isa::InstBytes)
        trace.push_back(aluRecord(i + 1, pc));
    return trace;
}

/** A fetch unit over a VectorTraceSource with exact length control. */
struct BatchRig
{
    func::VectorTraceSource source;
    BranchPredictor bpred;
    mem::MemHierarchy hierarchy;
    FetchUnit fetch;

    explicit BatchRig(std::vector<func::DynInst> trace,
                      FetchParams params = FetchParams{})
        : source(std::move(trace)), bpred(BranchPredictorParams{}),
          hierarchy(mem::L2Params{}, mem::DramParams{}),
          fetch(params, &source, &bpred, &hierarchy)
    {
    }
};

/** Tick until the queue is non-empty (waits out I-cache fills). */
Cycle
tickUntilFetched(BatchRig &rig, Cycle now, Cycle limit = 1000)
{
    for (; now < limit && rig.fetch.queue().empty(); ++now)
        rig.fetch.tick(now);
    return now;
}

/** Tick to end of stream, popping the queue into a record list. */
std::vector<func::DynInst>
drainAll(BatchRig &rig, Cycle now, Cycle limit = 5000)
{
    std::vector<func::DynInst> out;
    for (; now < limit; ++now) {
        rig.fetch.tick(now);
        while (!rig.fetch.queue().empty()) {
            out.push_back(rig.fetch.queue().front().di);
            rig.fetch.queue().pop_front();
        }
        if (rig.fetch.traceExhausted())
            break;
    }
    return out;
}

void
expectSeqRange(const std::vector<func::DynInst> &records, SeqNum first,
               std::size_t count)
{
    ASSERT_EQ(records.size(), count);
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(records[i].seq, first + i) << "at index " << i;
}

// A trace shorter than one FillBatch (64): the very first fill() comes
// back short, latches exhaustion, and the unit still delivers every
// record exactly once before reporting the end of the trace.
TEST(FetchBatch, SourceExhaustedMidBatch)
{
    BatchRig rig(straightTrace(10));
    auto records = drainAll(rig, 0);
    expectSeqRange(records, 1, 10);
    EXPECT_TRUE(rig.fetch.traceExhausted());
    EXPECT_EQ(rig.fetch.fetchedInsts.value(), 10u);
}

// A batch narrower than the fetch width: two records against a
// four-wide front end arrive in one fetch group, then the unit is
// exhausted — no padding, no stall.
TEST(FetchBatch, BatchNarrowerThanFetchWidth)
{
    FetchParams params;
    params.fetchWidth = 4;
    BatchRig rig(straightTrace(2), params);
    tickUntilFetched(rig, 0);
    EXPECT_EQ(rig.fetch.queue().size(), 2u);
    EXPECT_TRUE(rig.fetch.traceExhausted());
    EXPECT_EQ(rig.fetch.fetchedInsts.value(), 2u);
}

// The repositioning contract: a squash mid-stream hands back the fetch
// queue followed by the fill buffer's remnant — one contiguous run of
// stream records — and the next fetch resumes exactly after them.
TEST(FetchBatch, RefillAfterSquashResumesAtHandedBackPosition)
{
    // 100 records: the first fill() pulls a full 64-record batch.
    BatchRig rig(straightTrace(100));
    tickUntilFetched(rig, 0);
    std::size_t fetched = rig.fetch.queue().size();
    ASSERT_GT(fetched, 0u);

    std::vector<func::DynInst> pending;
    rig.fetch.squashAndDrain(pending);
    // Queue + buffer remnant = the whole first batch, in stream order.
    expectSeqRange(pending, 1, 64);
    EXPECT_TRUE(rig.fetch.queue().empty());
    // Statistics are left alone by the squash.
    EXPECT_EQ(rig.fetch.fetchedInsts.value(), fetched);

    // Refill immediately after the squash: the next records fetched
    // are the source's remainder, starting right after the hand-back.
    auto resumed = drainAll(rig, 1000);
    expectSeqRange(resumed, 65, 36);
    EXPECT_TRUE(rig.fetch.traceExhausted());
}

// The end-of-stream latch is cleared by a squash (the handed-back
// records precede whatever the source still holds), and re-latched by
// the next short fill once the source really is dry.
TEST(FetchBatch, SquashClearsExhaustionLatch)
{
    BatchRig rig(straightTrace(10));
    Cycle now = tickUntilFetched(rig, 0);
    // Let the whole (short) trace reach the queue.
    for (; now < 1000 && !rig.fetch.traceExhausted(); ++now)
        rig.fetch.tick(now);
    ASSERT_TRUE(rig.fetch.traceExhausted());
    ASSERT_EQ(rig.fetch.queue().size(), 10u);

    std::vector<func::DynInst> pending;
    rig.fetch.squashAndDrain(pending);
    expectSeqRange(pending, 1, 10);
    // Cleared: exhaustion must be re-detected, not remembered.
    EXPECT_FALSE(rig.fetch.traceExhausted());

    // The source really is empty, so one more fetch attempt re-latches
    // without fetching anything.
    rig.fetch.tick(now);
    EXPECT_TRUE(rig.fetch.traceExhausted());
    EXPECT_TRUE(rig.fetch.queue().empty());
    EXPECT_EQ(rig.fetch.fetchedInsts.value(), 10u);
}

// A squash while frozen on a mispredicted branch resets the stall so
// fetch resumes immediately — the phase boundary must not leave the
// front end waiting for a resolveBranch() that will never come.
TEST(FetchBatch, SquashWhileFrozenOnMispredictUnfreezes)
{
    // Five ALUs, then a taken branch a cold predictor gets wrong.
    auto trace = straightTrace(5);
    Addr branch_pc = trace.back().pc + isa::InstBytes;
    func::DynInst branch;
    branch.seq = 6;
    branch.pc = branch_pc;
    branch.inst = {isa::Opcode::BNE, isa::NoReg, 5, 0, 16};
    branch.cls = isa::classOf(branch.inst.op);
    branch.taken = true;
    branch.nextPc = branch_pc + 0x100;
    trace.push_back(branch);
    trace.push_back(aluRecord(7, branch.nextPc));
    BatchRig rig(std::move(trace));

    Cycle now = 0;
    for (; now < 1000 && !rig.fetch.stalledOnBranch(); ++now)
        rig.fetch.tick(now);
    ASSERT_TRUE(rig.fetch.stalledOnBranch());

    // Frozen ticks only accumulate redirect stall cycles.
    std::uint64_t frozen = rig.fetch.redirectCycles.value();
    rig.fetch.tick(now);
    EXPECT_GT(rig.fetch.redirectCycles.value(), frozen);

    std::vector<func::DynInst> pending;
    rig.fetch.squashAndDrain(pending);
    EXPECT_FALSE(rig.fetch.stalledOnBranch());
    // Everything fetched or buffered comes back: the whole 7-record
    // trace fit in one batch, so the hand-back is the full stream.
    expectSeqRange(pending, 1, 7);

    // Unfrozen: further ticks go down the fetch path (no redirect
    // accounting), and the now-empty source just reports exhaustion.
    std::uint64_t after = rig.fetch.redirectCycles.value();
    rig.fetch.tick(now + 1);
    rig.fetch.tick(now + 2);
    EXPECT_EQ(rig.fetch.redirectCycles.value(), after);
    EXPECT_TRUE(rig.fetch.traceExhausted());
}

} // namespace
} // namespace cpe::cpu
