/**
 * @file
 * Whole-core timing tests: golden-model equivalence (the timing core
 * commits exactly the functional stream), determinism, and directed
 * micro-programs whose cycle counts expose each machine mechanism —
 * ILP extraction, dependency serialization, mispredict penalties,
 * store-commit backpressure, and port-count scaling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "cpu/ooo_core.hh"
#include "func/executor.hh"
#include "prog/builder.hh"

namespace cpe::cpu {
namespace {

using namespace prog::reg;
using prog::Builder;
using prog::Label;
using prog::Program;

struct RunOutcome
{
    Cycle cycles;
    std::uint64_t insts;
    double ipc;
};

RunOutcome
runCore(const Program &program, CoreParams params = CoreParams{})
{
    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    OooCore core(params, &executor, &hierarchy);
    Cycle cycles = core.run();
    return {cycles, core.committedInsts(), core.ipc()};
}

// Loop-shaped kernels so the I-cache warms after the first iteration
// (straight-line megabyte code would measure cold I-misses instead).

Program
independentAlus(unsigned iters)
{
    Builder b("ilp");
    b.loadImm(s0, iters);
    Label loop = b.here();
    for (unsigned i = 0; i < 8; ++i)
        b.addi(static_cast<RegIndex>(5 + i), zero, 1);
    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop);
    b.halt();
    return b.build();
}

Program
dependentChain(unsigned iters)
{
    Builder b("chain");
    b.loadImm(s0, iters);
    b.loadImm(t0, 0);
    Label loop = b.here();
    for (unsigned i = 0; i < 8; ++i)
        b.addi(t0, t0, 1);
    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop);
    b.halt();
    return b.build();
}

TEST(Core, CommitsExactlyTheFunctionalStream)
{
    Builder b("equiv");
    Addr data = b.allocData(64, 8);
    b.loadImm(t0, data);
    b.loadImm(t1, 25);
    Label loop = b.here();
    b.sd(t1, 0, t0);
    b.ld(t2, 0, t0);
    b.add(t3, t3, t2);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.halt();
    Program program = b.build();

    // Reference: pure functional run.
    func::Executor golden(program);
    std::uint64_t golden_count = golden.run();

    auto outcome = runCore(program);
    EXPECT_EQ(outcome.insts, golden_count);
    EXPECT_GE(outcome.cycles, golden_count / 4);  // 4-wide bound
}

TEST(Core, DeterministicAcrossRuns)
{
    Program program = independentAlus(200);
    auto a = runCore(program);
    auto b = runCore(program);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
}

TEST(Core, ExtractsIlpFromIndependentOps)
{
    auto outcome = runCore(independentAlus(300));
    // 2 ALUs in the default config bound sustained integer IPC at ~2;
    // it must get reasonably close once startup amortizes.
    EXPECT_GT(outcome.ipc, 1.5);
}

TEST(Core, WiderMachineRunsIlpFaster)
{
    CoreParams narrow;
    narrow.renameWidth = narrow.issueWidth = narrow.commitWidth = 1;
    narrow.fetch.fetchWidth = 1;
    CoreParams wide;  // default 4-wide
    Program program = independentAlus(400);
    auto slow = runCore(program, narrow);
    auto fast = runCore(program, wide);
    EXPECT_LT(fast.cycles, slow.cycles);
    EXPECT_GT(static_cast<double>(slow.cycles) / fast.cycles, 1.6);
}

TEST(Core, DependentChainSerializes)
{
    auto chained = runCore(dependentChain(50));
    auto parallel = runCore(independentAlus(50));
    // A RAW chain of 400 1-cycle ops needs ~400 cycles at any width.
    EXPECT_GE(chained.cycles, 400u);
    EXPECT_LT(parallel.cycles, chained.cycles);
}

TEST(Core, MispredictsCostCycles)
{
    // Data-dependent branch pattern the predictor cannot learn:
    // alternate taken/not-taken keyed off an LCG bit.
    auto build = [](bool predictable) {
        Builder b("br");
        b.loadImm(s0, 12345);
        b.loadImm(s1, 200);   // iterations
        Label loop = b.here();
        Label skip = b.newLabel();
        if (predictable) {
            b.beq(zero, zero, skip);  // always taken
        } else {
            // s0 = s0 * 1103515245 + 12345; branch on bit 16.
            b.loadImm(t0, 1103515245);
            b.mul(s0, s0, t0);
            b.addi(s0, s0, 12345);
            b.srli(t1, s0, 16);
            b.andi(t1, t1, 1);
            b.bne(t1, zero, skip);
        }
        b.addi(s2, s2, 1);
        b.bind(skip);
        b.addi(s1, s1, -1);
        b.bne(s1, zero, loop);
        b.halt();
        return b.build();
    };

    Program random_prog = build(false);
    Program pred_prog = build(true);
    func::Executor count_random(random_prog);
    std::uint64_t random_insts = count_random.run();
    auto random = runCore(random_prog);
    double random_cpi = static_cast<double>(random.cycles) / random_insts;

    func::Executor count_pred(pred_prog);
    std::uint64_t pred_insts = count_pred.run();
    auto predictable = runCore(pred_prog);
    double pred_cpi = static_cast<double>(predictable.cycles) / pred_insts;

    // Random branches cost noticeably more per instruction.
    EXPECT_GT(random_cpi, pred_cpi * 1.2);
}

TEST(Core, StoreBurstBackpressureWithoutBuffer)
{
    // A burst of stores to distinct (warm) lines: with no store buffer
    // each store needs the single port at commit.
    Builder b("storeburst");
    Addr data = b.allocData(4096, 64);
    b.loadImm(t0, data);
    // Warm every line the burst will touch (16 reps x 32 B).
    b.loadImm(t1, 16);
    Label warm = b.here();
    b.ld(t2, 0, t0);
    b.addi(t0, t0, 32);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, warm);
    // Store burst, unrolled.
    b.loadImm(t0, data);
    for (int rep = 0; rep < 16; ++rep) {
        for (int u = 0; u < 4; ++u)
            b.sd(t1, 8 * u, t0);
        b.addi(t0, t0, 32);
    }
    b.halt();
    Program program = b.build();

    CoreParams plain;  // 1 port, no buffer
    CoreParams buffered = plain;
    buffered.dcache.tech.storeBufferEntries = 8;
    buffered.dcache.tech.portWidthBytes = 32;  // wide drains

    auto without = runCore(program, plain);
    auto with = runCore(program, buffered);
    EXPECT_LT(with.cycles, without.cycles)
        << "combining + wide drains must retire the burst faster";
}

TEST(Core, DualPortHelpsLoadBursts)
{
    Builder b("loadburst");
    Addr data = b.allocData(2048, 64);
    b.loadImm(s0, data);
    b.loadImm(s1, 40);  // passes over a warm 2 KiB region
    Label pass = b.here();
    b.mv(t0, s0);
    b.loadImm(t1, 16);
    Label loop = b.here();
    b.ld(t2, 0, t0);
    b.ld(t3, 8, t0);
    b.ld(t4, 16, t0);
    b.ld(t5, 24, t0);
    b.addi(t0, t0, 32);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.addi(s1, s1, -1);
    b.bne(s1, zero, pass);
    b.halt();
    Program program = b.build();

    CoreParams one;
    one.dcache.tech = core::PortTechConfig::singlePortBase();
    CoreParams two;
    two.dcache.tech = core::PortTechConfig::dualPortBase();

    auto single = runCore(program, one);
    auto dual = runCore(program, two);
    EXPECT_GT(static_cast<double>(single.cycles) / dual.cycles, 1.25)
        << "dual-ported cache must speed up a load-bound loop";
}

TEST(Core, LineBuffersRecoverLoadBandwidth)
{
    // Same load-burst program as above: sequential loads are exactly
    // what load-all captures.
    Builder b("loadall");
    Addr data = b.allocData(2048, 64);
    b.loadImm(s0, data);
    b.loadImm(s1, 40);
    Label pass = b.here();
    b.mv(t0, s0);
    b.loadImm(t1, 16);
    Label loop = b.here();
    b.ld(t2, 0, t0);
    b.ld(t3, 8, t0);
    b.ld(t4, 16, t0);
    b.ld(t5, 24, t0);
    b.addi(t0, t0, 32);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.addi(s1, s1, -1);
    b.bne(s1, zero, pass);
    b.halt();
    Program program = b.build();

    CoreParams plain;
    plain.dcache.tech = core::PortTechConfig::singlePortBase();
    CoreParams loadall = plain;
    loadall.dcache.tech.lineBuffers = 4;
    loadall.dcache.tech.portWidthBytes = 32;

    auto base = runCore(program, plain);
    auto buffered = runCore(program, loadall);
    EXPECT_GT(static_cast<double>(base.cycles) / buffered.cycles, 1.2)
        << "load-all-wide must relieve the single port";
}

TEST(Core, HaltDrainsOutstandingStores)
{
    Builder b("drain");
    Addr data = b.allocData(256, 64);
    b.loadImm(t0, data);
    for (int i = 0; i < 8; ++i)
        b.sd(t0, 8 * i, t0);
    b.halt();
    Program program = b.build();

    CoreParams params;
    params.dcache.tech.storeBufferEntries = 8;
    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    OooCore core(params, &executor, &hierarchy);
    core.run();
    EXPECT_FALSE(core.dcache().busy())
        << "run() must drain buffered stores after HALT commits";
    EXPECT_TRUE(core.dcache().l1d().isDirty(data));
}

TEST(Core, KernelModeSwitchesAreCounted)
{
    Builder b("modes");
    for (int i = 0; i < 3; ++i) {
        b.emode();
        b.addi(t0, t0, 1);
        b.xmode();
    }
    b.halt();
    auto program = b.build();

    CoreParams params;
    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    OooCore core(params, &executor, &hierarchy);
    core.run();
    EXPECT_EQ(core.modeSwitches.value(), 6u);
}

TEST(Core, IpcNeverExceedsMachineWidth)
{
    auto outcome = runCore(independentAlus(200));
    EXPECT_LE(outcome.ipc, 4.0);
}

TEST(Core, WarmupResetsStatistics)
{
    Program program = independentAlus(300);
    func::Executor counter(program);
    std::uint64_t total = counter.run();

    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    cpu::OooCore core(CoreParams{}, &executor, &hierarchy);
    // The degenerate warm-up schedule, hand-rolled: a commit boundary
    // at the halfway point whose hook starts the measurement region
    // (what the phase engine installs for a warmup_insts config).
    bool warmup_fired = false;
    core.setCommitBoundary(total / 2, [&](Cycle now) {
        warmup_fired = true;
        core.beginMeasurement(now);
        hierarchy.statGroup().resetAll();
        return true;
    });
    Cycle cycles = core.run();

    EXPECT_TRUE(warmup_fired);
    // Only the post-warm-up half is counted.
    EXPECT_EQ(core.committedInsts(), total - total / 2);
    EXPECT_LT(core.measuredCycles(), cycles);
    EXPECT_GT(core.measuredCycles(), 0u);
    // Measured IPC is better than whole-run IPC: the cold I-cache
    // start-up landed in the warm-up region.
    double whole_run =
        static_cast<double>(total) / cycles;
    EXPECT_GT(core.ipc(), whole_run);
}

TEST(Core, TraceWithoutHaltTerminates)
{
    // Feed the core a truncated trace via a bounded VectorTraceSource.
    Builder b("trunc");
    b.loadImm(t0, 0);
    for (int i = 0; i < 50; ++i)
        b.addi(t0, t0, 1);
    b.halt();
    Program program = b.build();
    func::Executor executor(program);
    auto trace = func::recordTrace(executor, 20);  // cut before HALT
    func::VectorTraceSource source(trace);

    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    OooCore core(CoreParams{}, &source, &hierarchy);
    Cycle cycles = core.run();
    EXPECT_EQ(core.committedInsts(), 20u);
    EXPECT_GT(cycles, 0u);
}

TEST(Core, PipeTraceRecordsStageTimestamps)
{
    Builder b("trace");
    b.loadImm(t0, 3);
    b.addi(t1, t0, 1);
    b.halt();
    Program program = b.build();

    std::ostringstream trace;
    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    OooCore core(CoreParams{}, &executor, &hierarchy);
    core.setPipeTrace(&trace);
    core.run();

    std::string text = trace.str();
    // One line per committed instruction.
    EXPECT_EQ(static_cast<std::uint64_t>(
                  std::count(text.begin(), text.end(), '\n')),
              core.committedInsts());
    EXPECT_NE(text.find("addi x6, x5, 1"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);

    // Stage timestamps are monotonic within a line: f <= d <= i <= c <= r.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        auto field = [&](const std::string &key) {
            std::size_t pos = line.find(key + "=");
            EXPECT_NE(pos, std::string::npos) << line;
            return std::strtoull(line.c_str() + pos + key.size() + 1,
                                 nullptr, 10);
        };
        std::uint64_t f = field("f"), d = field("d"), i = field("i"),
                      c = field("c"), r = field("r");
        EXPECT_LE(f, d) << line;
        EXPECT_LE(d, i) << line;
        EXPECT_LE(i, c) << line;
        EXPECT_LE(c, r) << line;
    }
}

TEST(Core, CommitOrderIsProgramOrder)
{
    Builder b("order");
    Addr data = b.allocData(64, 8);
    b.loadImm(t0, data);
    b.ld(t1, 0, t0);        // slow (cold miss)
    b.addi(t2, zero, 1);    // fast, independent
    b.addi(t3, zero, 2);
    b.halt();
    Program program = b.build();

    std::ostringstream trace;
    func::Executor executor(program);
    mem::MemHierarchy hierarchy(mem::L2Params{}, mem::DramParams{});
    OooCore core(CoreParams{}, &executor, &hierarchy);
    core.setPipeTrace(&trace);
    core.run();

    // seq numbers appear in ascending order even though the ALU ops
    // complete long before the missing load.
    std::istringstream lines(trace.str());
    std::string line;
    std::uint64_t prev = 0;
    while (std::getline(lines, line)) {
        std::uint64_t seq =
            std::strtoull(line.c_str() + line.find("seq=") + 4, nullptr,
                          10);
        EXPECT_EQ(seq, prev + 1);
        prev = seq;
    }
}

} // namespace
} // namespace cpe::cpu
