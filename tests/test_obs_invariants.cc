/**
 * @file
 * Property tests over the event stream: structural invariants that any
 * correct trace of any run must satisfy — cycle monotonicity, matched
 * store-buffer insert/drain lifetimes, line-buffer hits only between a
 * fill and an evict, balanced MSHR allocate/retire, contiguous interval
 * records whose per-stat deltas sum exactly to the run_end totals.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "obs/tracer.hh"
#include "sim/simulator.hh"
#include "util/json.hh"

namespace cpe::sim {
namespace {

struct ParsedTrace
{
    Json runBegin;
    Json runEnd;
    std::vector<Json> events;     ///< "ev" lines, in file order
    std::vector<Json> intervals;  ///< "interval" lines, in file order
};

ParsedTrace
traceWorkload(const std::string &workload, Cycle sample_cycles)
{
    obs::StringTraceSink sink;
    SimConfig config = SimConfig::defaults();
    config.workloadName = workload;
    config.core.dcache.tech =
        core::PortTechConfig::singlePortAllTechniques();
    config.obs.traceSink = &sink;
    config.obs.sampleCycles = sample_cycles;
    simulate(config);

    ParsedTrace trace;
    std::istringstream lines(sink.text());
    std::string line;
    bool first = true;
    while (std::getline(lines, line)) {
        Json parsed = Json::parse(line, "trace line");
        const std::string &type = parsed.at("t").asString();
        if (first) {
            EXPECT_EQ(type, "run_begin");
            first = false;
        }
        if (type == "run_begin")
            trace.runBegin = parsed;
        else if (type == "run_end")
            trace.runEnd = parsed;
        else if (type == "ev")
            trace.events.push_back(std::move(parsed));
        else if (type == "interval")
            trace.intervals.push_back(std::move(parsed));
        else
            ADD_FAILURE() << "unknown line type: " << line;
    }
    EXPECT_FALSE(trace.runEnd.isNull()) << "no run_end line";
    return trace;
}

std::uint64_t
field(const Json &event, const std::string &name)
{
    const Json *value = event.find(name);
    return value ? static_cast<std::uint64_t>(value->asNumber()) : 0;
}

TEST(ObsInvariants, CyclesAreMonotoneAndKindsKnown)
{
    ParsedTrace trace = traceWorkload("copy", 0);
    ASSERT_FALSE(trace.events.empty());

    const std::set<std::string> known = {
        "port_grant", "port_conflict", "sb_insert", "sb_merge",
        "sb_drain", "sb_restore", "lb_fill", "lb_hit", "lb_evict",
        "mshr_alloc", "mshr_retire", "cache_evict", "fill", "commit",
        "commit_stall"};

    Cycle last = 0;
    for (const Json &event : trace.events) {
        const std::string &kind = event.at("k").asString();
        EXPECT_TRUE(known.count(kind)) << kind;
        Cycle cycle = field(event, "c");
        EXPECT_GE(cycle, last) << kind;
        last = cycle;
    }
    EXPECT_EQ(field(trace.runEnd, "events"), trace.events.size());
}

TEST(ObsInvariants, StoreBufferLifetimesBalance)
{
    ParsedTrace trace = traceWorkload("copy", 0);
    std::uint64_t inserts = 0;
    std::uint64_t recreates = 0;       // sb_restore with b=1
    std::uint64_t finishing_drains = 0;  // sb_drain with b=1
    for (const Json &event : trace.events) {
        const std::string &kind = event.at("k").asString();
        if (kind == "sb_insert")
            ++inserts;
        else if (kind == "sb_restore" && field(event, "b"))
            ++recreates;
        else if (kind == "sb_drain" && field(event, "b"))
            ++finishing_drains;
    }
    EXPECT_GT(inserts, 0u);
    // drainAll empties the buffer before run_end, so every entry ever
    // created (inserted, or re-created by a refused drain) was freed
    // by exactly one entry-finishing drain.
    EXPECT_EQ(inserts + recreates, finishing_drains);
}

TEST(ObsInvariants, LineBufferHitsOnlyBetweenFillAndEvict)
{
    ParsedTrace trace = traceWorkload("copy", 0);
    std::set<std::uint64_t> active;
    std::uint64_t hits = 0;
    for (const Json &event : trace.events) {
        const std::string &kind = event.at("k").asString();
        std::uint64_t addr = field(event, "addr");
        if (kind == "lb_fill") {
            active.insert(addr);
        } else if (kind == "lb_hit") {
            EXPECT_TRUE(active.count(addr))
                << "hit on inactive line " << addr;
            ++hits;
        } else if (kind == "lb_evict") {
            EXPECT_TRUE(active.count(addr))
                << "evict of inactive line " << addr;
            active.erase(addr);
        }
    }
    EXPECT_GT(hits, 0u);
}

TEST(ObsInvariants, MshrAllocRetireBalance)
{
    ParsedTrace trace = traceWorkload("copy", 0);
    std::multiset<std::uint64_t> outstanding;
    std::uint64_t allocs = 0;
    for (const Json &event : trace.events) {
        const std::string &kind = event.at("k").asString();
        std::uint64_t addr = field(event, "addr");
        if (kind == "mshr_alloc") {
            // One MSHR per line: a second allocation for a line still
            // in flight would be a simulator bug.
            EXPECT_FALSE(outstanding.count(addr)) << addr;
            outstanding.insert(addr);
            ++allocs;
        } else if (kind == "mshr_retire") {
            ASSERT_TRUE(outstanding.count(addr)) << addr;
            outstanding.erase(outstanding.find(addr));
        }
    }
    EXPECT_GT(allocs, 0u);
    // drainAll waits for every outstanding fill.
    EXPECT_TRUE(outstanding.empty());
}

TEST(ObsInvariants, CommitEventsSumToCommittedInsts)
{
    ParsedTrace trace = traceWorkload("copy", 0);
    std::uint64_t committed = 0;
    for (const Json &event : trace.events)
        if (event.at("k").asString() == "commit")
            committed += field(event, "a");
    EXPECT_EQ(committed, field(trace.runEnd, "insts"));
}

// The tentpole acceptance property: with warm-up off, the per-interval
// scalar deltas sum exactly — no tolerance — to the run's final
// StatGroup values as recorded in run_end.
TEST(ObsInvariants, IntervalStatsSumToFinalTotals)
{
    ParsedTrace trace = traceWorkload("crc", 1000);
    ASSERT_GT(trace.intervals.size(), 1u);

    std::map<std::string, double> sums;
    for (const Json &interval : trace.intervals)
        for (const auto &[name, delta] :
             interval.at("stats").members())
            sums[name] += delta.asNumber();

    const Json &finals = trace.runEnd.at("stats");
    for (const auto &[name, value] : finals.members())
        EXPECT_EQ(sums[name], value.asNumber()) << name;
    for (const auto &[name, sum] : sums)
        EXPECT_TRUE(finals.find(name)) << name << " summed to " << sum
                                       << " but is absent from run_end";
}

TEST(ObsInvariants, IntervalRecordsAreContiguous)
{
    ParsedTrace trace = traceWorkload("crc", 1000);
    ASSERT_FALSE(trace.intervals.empty());

    std::uint64_t expected_seq = 0;
    std::uint64_t expected_start = 0;
    for (const Json &interval : trace.intervals) {
        EXPECT_EQ(field(interval, "seq"), expected_seq);
        EXPECT_EQ(field(interval, "start"), expected_start);
        std::uint64_t end = field(interval, "end");
        EXPECT_EQ(field(interval, "cycles"),
                  end - field(interval, "start"));
        expected_start = end;
        ++expected_seq;
    }
    // finalize() closes the last interval at the true end of the run
    // (after the post-HALT drain), so the timeline covers every cycle.
    EXPECT_EQ(expected_start, field(trace.runEnd, "cycles"));

    // Derived metrics exist and are sane on every record.
    for (const Json &interval : trace.intervals) {
        double ipc = interval.at("ipc").asNumber();
        EXPECT_GE(ipc, 0.0);
        double util = interval.at("port_util").asNumber();
        EXPECT_GE(util, 0.0);
        EXPECT_LE(util, 1.0);
        double lb = interval.at("lb_hit_rate").asNumber();
        EXPECT_GE(lb, 0.0);
        EXPECT_LE(lb, 1.0);
        EXPECT_GE(interval.at("sb_occ_mean").asNumber(), 0.0);
    }
}

} // namespace
} // namespace cpe::sim
