/**
 * @file
 * D-cache unit integration tests: the full interplay of ports, MSHRs,
 * store buffer, and line buffers under each technique configuration —
 * the heart of the paper's mechanism.
 */

#include <gtest/gtest.h>

#include "core/dcache_unit.hh"

namespace cpe::core {
namespace {

struct Rig
{
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit;

    explicit Rig(const PortTechConfig &tech,
                 unsigned mshrs = 8)
        : unit(makeParams(tech, mshrs), &hierarchy)
    {
    }

    static DCacheParams
    makeParams(const PortTechConfig &tech, unsigned mshrs)
    {
        DCacheParams params;
        params.tech = tech;
        params.mshrs = mshrs;
        return params;
    }

    /** Warm the line containing @p addr into L1 and settle the unit. */
    void
    warm(Addr addr, Cycle &now)
    {
        unit.beginCycle(now);
        auto result = unit.tryLoad(addr, 8, now);
        ASSERT_TRUE(result.accepted);
        unit.endCycle(now);
        now = unit.drainAll(now + 1) + 1;
    }
};

TEST(DCacheUnit, ColdMissThenWarmHit)
{
    Rig rig(PortTechConfig::singlePortBase());
    Cycle now = 0;

    rig.unit.beginCycle(now);
    auto miss = rig.unit.tryLoad(0x1000, 8, now);
    ASSERT_TRUE(miss.accepted);
    EXPECT_EQ(miss.source, LoadSource::Miss);
    EXPECT_GT(miss.ready, now + 8);  // at least L2 latency
    rig.unit.endCycle(now);

    now = rig.unit.drainAll(now + 1) + 1;
    rig.unit.beginCycle(now);
    auto hit = rig.unit.tryLoad(0x1008, 8, now);
    ASSERT_TRUE(hit.accepted);
    EXPECT_EQ(hit.source, LoadSource::CacheHit);
    EXPECT_EQ(hit.ready, now + 1);  // hitLatency = 1
}

TEST(DCacheUnit, SinglePortRejectsSecondLoad)
{
    Rig rig(PortTechConfig::singlePortBase());
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_FALSE(rig.unit.tryLoad(0x1008, 8, now).accepted);
    EXPECT_EQ(rig.unit.loadRejectPort.value(), 1u);
    rig.unit.endCycle(now);

    // Next cycle the port frees up.
    ++now;
    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryLoad(0x1008, 8, now).accepted);
}

TEST(DCacheUnit, DualPortServicesTwoLoadsPerCycle)
{
    Rig rig(PortTechConfig::dualPortBase());
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_TRUE(rig.unit.tryLoad(0x1008, 8, now).accepted);
    EXPECT_FALSE(rig.unit.tryLoad(0x1010, 8, now).accepted);
}

TEST(DCacheUnit, MissesMergeIntoMshr)
{
    Rig rig(PortTechConfig::dualPortBase());
    Cycle now = 0;

    rig.unit.beginCycle(now);
    auto first = rig.unit.tryLoad(0x1000, 8, now);
    auto second = rig.unit.tryLoad(0x1008, 8, now);  // same line
    ASSERT_TRUE(first.accepted);
    ASSERT_TRUE(second.accepted);
    EXPECT_EQ(rig.unit.loadsMiss.value(), 1u);
    EXPECT_EQ(rig.unit.loadsMissMerged.value(), 1u);
    // The merged load needs no port: a third access still gets one.
    EXPECT_TRUE(rig.unit.tryLoad(0x2000, 8, now).accepted);
}

TEST(DCacheUnit, MshrExhaustionRejectsWithoutBurningPorts)
{
    PortTechConfig tech = PortTechConfig::dualPortBase();
    Rig rig(tech, /*mshrs=*/1);
    Cycle now = 0;

    rig.unit.beginCycle(now);
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    std::uint64_t grants = rig.unit.ports().grants.value();
    auto rejected = rig.unit.tryLoad(0x2000, 8, now);
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rig.unit.loadRejectMshr.value(), 1u);
    // The scoreboard rejected before arbitration: no port consumed.
    EXPECT_EQ(rig.unit.ports().grants.value(), grants);
}

TEST(DCacheUnit, StoreBufferAcceptsWithoutPort)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.storeBufferEntries = 4;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    // The port goes to a load; the store still commits.
    EXPECT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_TRUE(rig.unit.tryStore(0x1008, 8, now));
    EXPECT_EQ(rig.unit.storesToBuffer.value(), 1u);
    EXPECT_EQ(rig.unit.storeBuffer().occupancy(), 1u);
    rig.unit.endCycle(now);  // no free port: nothing drains
    EXPECT_EQ(rig.unit.storeBuffer().occupancy(), 1u);

    // An idle cycle drains it.
    ++now;
    rig.unit.beginCycle(now);
    rig.unit.endCycle(now);
    EXPECT_TRUE(rig.unit.storeBuffer().empty());
    EXPECT_TRUE(rig.unit.l1d().isDirty(0x1008));
}

TEST(DCacheUnit, DirectStoreNeedsPort)
{
    Rig rig(PortTechConfig::singlePortBase());  // no store buffer
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_FALSE(rig.unit.tryStore(0x1008, 8, now));  // port taken
    EXPECT_EQ(rig.unit.storeRejects.value(), 1u);
    rig.unit.endCycle(now);

    ++now;
    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryStore(0x1008, 8, now));
    EXPECT_EQ(rig.unit.storesDirect.value(), 1u);
}

TEST(DCacheUnit, StoreForwardingFullCoverage)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.storeBufferEntries = 4;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    // Claim the port with an unrelated load, then buffer a store.
    ASSERT_TRUE(rig.unit.tryLoad(0x1018, 8, now).accepted);
    ASSERT_TRUE(rig.unit.tryStore(0x1008, 8, now));
    // A load covered by the buffered store forwards without a port.
    auto fwd = rig.unit.tryLoad(0x1008, 8, now);
    ASSERT_TRUE(fwd.accepted);
    EXPECT_EQ(fwd.source, LoadSource::StoreBufferFwd);
    EXPECT_EQ(fwd.ready, now + 1);
}

TEST(DCacheUnit, PartialOverlapBlocksAndForcesDrain)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.storeBufferEntries = 4;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    ASSERT_TRUE(rig.unit.tryStore(0x1008, 4, now));  // bytes 8-11
    auto blocked = rig.unit.tryLoad(0x1008, 8, now); // wants 8-15
    EXPECT_FALSE(blocked.accepted);
    EXPECT_EQ(rig.unit.loadRejectPartial.value(), 1u);
    rig.unit.endCycle(now);  // urgent drain uses the idle port

    ++now;
    rig.unit.beginCycle(now);
    auto retry = rig.unit.tryLoad(0x1008, 8, now);
    ASSERT_TRUE(retry.accepted);
    EXPECT_EQ(retry.source, LoadSource::CacheHit);
}

TEST(DCacheUnit, LoadAllCapturesAndServicesFromLineBuffer)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.lineBuffers = 2;
    tech.portWidthBytes = 32;  // load-all-wide
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);
    rig.unit.onModeSwitch();  // drop the fill's own capture

    rig.unit.beginCycle(now);
    // First load takes the port and captures the whole line...
    auto first = rig.unit.tryLoad(0x1000, 8, now);
    ASSERT_TRUE(first.accepted);
    EXPECT_EQ(first.source, LoadSource::CacheHit);
    // ...so three more same-line loads all hit line buffers with the
    // port busy.
    for (unsigned off = 8; off < 32; off += 8) {
        auto hit = rig.unit.tryLoad(0x1000 + off, 8, now);
        ASSERT_TRUE(hit.accepted) << off;
        EXPECT_EQ(hit.source, LoadSource::LineBuffer);
    }
    EXPECT_EQ(rig.unit.loadsLineBuffer.value(), 3u);
}

TEST(DCacheUnit, NarrowPortCapturesOnlyItsWindow)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.lineBuffers = 2;
    tech.portWidthBytes = 8;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);
    // The warming fill captured the whole line; flush so the test sees
    // only what the narrow port access captures.
    rig.unit.onModeSwitch();

    rig.unit.beginCycle(now);
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    // Same window sub-access hits; other windows do not.
    auto same = rig.unit.tryLoad(0x1004, 4, now);
    ASSERT_TRUE(same.accepted);
    EXPECT_EQ(same.source, LoadSource::LineBuffer);
    auto other = rig.unit.tryLoad(0x1008, 8, now);
    EXPECT_FALSE(other.accepted);  // port busy, no buffer coverage
}

TEST(DCacheUnit, FillCapturesWholeLineIntoBuffers)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.lineBuffers = 2;
    Rig rig(tech);
    Cycle now = 0;

    rig.unit.beginCycle(now);
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);  // miss
    rig.unit.endCycle(now);
    now = rig.unit.drainAll(now + 1) + 1;

    // After the fill, the whole line sits in a line buffer: loads hit
    // it without the port.
    rig.unit.beginCycle(now);
    auto hit = rig.unit.tryLoad(0x1018, 8, now);
    ASSERT_TRUE(hit.accepted);
    EXPECT_EQ(hit.source, LoadSource::LineBuffer);
    EXPECT_EQ(rig.unit.ports().grants.value(), 1u + 1u);
    // (one for the original miss probe, one for the fill steal)
}

TEST(DCacheUnit, ModeSwitchFlushesLineBuffers)
{
    PortTechConfig tech = PortTechConfig::singlePortAllTechniques();
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    rig.unit.endCycle(now);
    ++now;

    rig.unit.onModeSwitch();
    rig.unit.beginCycle(now);
    auto after = rig.unit.tryLoad(0x1008, 8, now);
    ASSERT_TRUE(after.accepted);
    EXPECT_EQ(after.source, LoadSource::CacheHit);  // buffers flushed
    EXPECT_GE(rig.unit.lineBuffers().flushes.value(), 1u);
}

TEST(DCacheUnit, StorePatchKeepsLineBufferCoherent)
{
    PortTechConfig tech = PortTechConfig::singlePortAllTechniques();
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    // Capture the line, then store into it.
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    ASSERT_TRUE(rig.unit.tryStore(0x1008, 8, now));
    // Load of the stored bytes must come from the store buffer (the
    // freshest copy), not the line buffer.
    auto load = rig.unit.tryLoad(0x1008, 8, now);
    ASSERT_TRUE(load.accepted);
    EXPECT_EQ(load.source, LoadSource::StoreBufferFwd);
    rig.unit.endCycle(now);
    now = rig.unit.drainAll(now + 1) + 1;

    // After the drain the line buffer was patched: still servable.
    rig.unit.beginCycle(now);
    auto after = rig.unit.tryLoad(0x1008, 8, now);
    ASSERT_TRUE(after.accepted);
    EXPECT_EQ(after.source, LoadSource::LineBuffer);
}

TEST(DCacheUnit, EvictionInvalidatesLineBuffer)
{
    PortTechConfig tech = PortTechConfig::dualPortBase();
    tech.lineBuffers = 4;
    DCacheParams params;
    params.tech = tech;
    params.cache.sizeBytes = 256;  // 4 sets x 2 ways: easy to conflict
    params.cache.assoc = 2;
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Cycle now = 0;
    auto touch = [&](Addr addr) {
        unit.beginCycle(now);
        unit.tryLoad(addr, 8, now);
        unit.endCycle(now);
        now = unit.drainAll(now + 1) + 1;
    };
    touch(0x1000);
    EXPECT_NE(unit.lineBuffers().lineMask(0x1000), 0u);
    touch(0x1080);  // same set
    touch(0x1100);  // same set: evicts 0x1000
    EXPECT_EQ(unit.lineBuffers().lineMask(0x1000), 0u)
        << "stale line buffer survived an L1 eviction";
}

TEST(DCacheUnit, WideDrainRetiresCombinedStoresInOneAccess)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.storeBufferEntries = 8;
    tech.portWidthBytes = 32;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    for (unsigned off = 0; off < 32; off += 8)
        ASSERT_TRUE(rig.unit.tryStore(0x1000 + off, 8, now));
    std::uint64_t grants_before = rig.unit.ports().grants.value();
    rig.unit.endCycle(now);
    EXPECT_TRUE(rig.unit.storeBuffer().empty());
    EXPECT_EQ(rig.unit.ports().grants.value(), grants_before + 1)
        << "4 combined stores should drain in a single wide access";
}

TEST(DCacheUnit, DrainAllConverges)
{
    PortTechConfig tech = PortTechConfig::singlePortAllTechniques();
    Rig rig(tech);
    Cycle now = 0;

    rig.unit.beginCycle(now);
    rig.unit.tryLoad(0x1000, 8, now);   // outstanding miss
    rig.unit.tryStore(0x2000, 8, now);  // buffered store (will miss)
    rig.unit.endCycle(now);
    EXPECT_TRUE(rig.unit.busy());

    Cycle done = rig.unit.drainAll(now + 1);
    EXPECT_FALSE(rig.unit.busy());
    EXPECT_GT(done, now);
    EXPECT_TRUE(rig.unit.l1d().probe(0x1000));
    EXPECT_TRUE(rig.unit.l1d().isDirty(0x2000));
}

TEST(DCacheUnit, BankedCacheConflictsOnSameBank)
{
    // 2 buses, 2 banks, word-interleaved: same-cycle accesses succeed
    // only when their addresses fall in different banks.
    PortTechConfig tech = PortTechConfig::dualPortBase();
    tech.banks = 2;
    tech.bankInterleaveBytes = 8;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    // 0x1000 -> bank 0, 0x1010 -> bank 0: conflict.
    EXPECT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_FALSE(rig.unit.tryLoad(0x1010, 8, now).accepted);
    EXPECT_EQ(rig.unit.bankConflicts.value(), 1u);
    // 0x1008 -> bank 1: proceeds on the second bus.
    EXPECT_TRUE(rig.unit.tryLoad(0x1008, 8, now).accepted);
    rig.unit.endCycle(now);

    ++now;
    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryLoad(0x1010, 8, now).accepted);
}

TEST(DCacheUnit, BankedBehavesLikeDualPortOnDisjointBanks)
{
    PortTechConfig tech = PortTechConfig::dualPortBase();
    tech.banks = 8;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    EXPECT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_TRUE(rig.unit.tryLoad(0x1008, 8, now).accepted);
    // Both buses consumed: a third access fails on ports, not banks.
    EXPECT_FALSE(rig.unit.tryLoad(0x1010, 8, now).accepted);
    EXPECT_EQ(rig.unit.bankConflicts.value(), 0u);
    EXPECT_EQ(rig.unit.loadRejectPort.value(), 1u);
}

TEST(DCacheUnit, FillOccupiesEveryBank)
{
    PortTechConfig tech = PortTechConfig::dualPortBase();
    tech.banks = 2;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    // Start a miss whose fill will arrive later.
    rig.unit.beginCycle(now);
    auto miss = rig.unit.tryLoad(0x4000, 8, now);
    ASSERT_TRUE(miss.accepted);
    rig.unit.endCycle(now);

    // Advance to the fill's arrival cycle and process it.
    Cycle fill_cycle = miss.ready - 1;  // ready = arrival + hitLatency
    rig.unit.beginCycle(fill_cycle);
    // During the fill's occupancy both banks refuse demand accesses.
    auto blocked = rig.unit.tryLoad(0x1000, 8, fill_cycle);
    auto blocked2 = rig.unit.tryLoad(0x1008, 8, fill_cycle);
    EXPECT_FALSE(blocked.accepted);
    EXPECT_FALSE(blocked2.accepted);
}

TEST(DCacheUnit, BankedDrainRestoresOnConflict)
{
    PortTechConfig tech = PortTechConfig::singlePortBase();
    tech.ports = 2;
    tech.banks = 2;
    tech.storeBufferEntries = 4;
    Rig rig(tech);
    Cycle now = 0;
    rig.warm(0x1000, now);

    rig.unit.beginCycle(now);
    // Load takes bank 0; a buffered store to bank 0 cannot drain this
    // cycle even though a bus is free.
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    ASSERT_TRUE(rig.unit.tryStore(0x1010, 8, now));  // bank 0
    rig.unit.endCycle(now);
    EXPECT_EQ(rig.unit.storeBuffer().occupancy(), 1u);

    ++now;
    rig.unit.beginCycle(now);
    rig.unit.endCycle(now);
    EXPECT_TRUE(rig.unit.storeBuffer().empty());
}

TEST(DCacheUnit, NextLinePrefetchIssuesAndHelps)
{
    DCacheParams params;
    params.tech = PortTechConfig::dualPortBase();
    params.nextLinePrefetch = true;
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Cycle now = 0;
    unit.beginCycle(now);
    auto miss = unit.tryLoad(0x1000, 8, now);
    ASSERT_TRUE(miss.accepted);
    EXPECT_EQ(unit.prefetchesIssued.value(), 1u);
    EXPECT_NE(unit.mshrs().find(0x1020), nullptr);

    // A demand load to the prefetched line merges and is counted as a
    // useful prefetch.
    auto merged = unit.tryLoad(0x1028, 8, now);
    ASSERT_TRUE(merged.accepted);
    EXPECT_EQ(merged.source, LoadSource::Miss);
    EXPECT_EQ(unit.prefetchesUseful.value(), 1u);
    unit.endCycle(now);

    // After the fills land, both lines sit in L1.
    now = unit.drainAll(now + 1) + 1;
    EXPECT_TRUE(unit.l1d().probe(0x1000));
    EXPECT_TRUE(unit.l1d().probe(0x1020));
}

TEST(DCacheUnit, PrefetchNeverTakesTheLastMshr)
{
    DCacheParams params;
    params.tech = PortTechConfig::dualPortBase();
    params.nextLinePrefetch = true;
    params.mshrs = 2;
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Cycle now = 0;
    unit.beginCycle(now);
    // One MSHR free after the demand miss: no prefetch.
    ASSERT_TRUE(unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_EQ(unit.prefetchesIssued.value(), 0u);
    EXPECT_EQ(unit.mshrs().occupancy(), 1u);
}

TEST(DCacheUnit, PrefetchDisabledByDefault)
{
    Rig rig(PortTechConfig::dualPortBase());
    Cycle now = 0;
    rig.unit.beginCycle(now);
    ASSERT_TRUE(rig.unit.tryLoad(0x1000, 8, now).accepted);
    EXPECT_EQ(rig.unit.prefetchesIssued.value(), 0u);
    EXPECT_EQ(rig.unit.mshrs().occupancy(), 1u);
}

TEST(DCacheUnit, VictimCacheCatchesConflictEvictions)
{
    DCacheParams params;
    params.tech = PortTechConfig::dualPortBase();
    params.cache.sizeBytes = 256;  // 4 sets x 2 ways
    params.cache.assoc = 2;
    params.victimEntries = 4;
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Cycle now = 0;
    auto touch = [&](Addr addr) {
        unit.beginCycle(now);
        auto result = unit.tryLoad(addr, 8, now);
        EXPECT_TRUE(result.accepted);
        unit.endCycle(now);
        now = unit.drainAll(now + 1) + 1;
        return result;
    };

    // Three same-set lines: the third fill evicts 0x1000 into the
    // victim cache.
    touch(0x1000);
    touch(0x1080);
    touch(0x1100);
    EXPECT_EQ(unit.victimInserts.value(), 1u);
    EXPECT_FALSE(unit.l1d().probe(0x1000));

    // Re-touching 0x1000 is a victim swap, not a fill: fast, and no
    // new MSHR traffic.
    std::uint64_t fills_before = unit.fills.value();
    auto hit = touch(0x1000);
    EXPECT_EQ(unit.victimHits.value(), 1u);
    EXPECT_EQ(unit.fills.value(), fills_before);
    EXPECT_TRUE(unit.l1d().probe(0x1000));
    (void)hit;
}

TEST(DCacheUnit, VictimCachePreservesDirtyData)
{
    DCacheParams params;
    params.tech = PortTechConfig::dualPortBase();
    params.cache.sizeBytes = 256;
    params.cache.assoc = 2;
    params.victimEntries = 4;
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Cycle now = 0;
    auto settle = [&]() { now = unit.drainAll(now + 1) + 1; };

    // Dirty 0x1000, then evict it via two same-set fills.
    unit.beginCycle(now);
    ASSERT_TRUE(unit.tryLoad(0x1000, 8, now).accepted);
    unit.endCycle(now);
    settle();
    unit.beginCycle(now);
    ASSERT_TRUE(unit.tryStore(0x1000, 8, now));
    unit.endCycle(now);
    settle();
    for (Addr addr : {0x1080ull, 0x1100ull}) {
        unit.beginCycle(now);
        ASSERT_TRUE(unit.tryLoad(addr, 8, now).accepted);
        unit.endCycle(now);
        settle();
    }
    ASSERT_FALSE(unit.l1d().probe(0x1000));

    // The swap back must restore the dirty bit (no data loss).
    unit.beginCycle(now);
    ASSERT_TRUE(unit.tryLoad(0x1000, 8, now).accepted);
    unit.endCycle(now);
    EXPECT_TRUE(unit.l1d().isDirty(0x1000));
}

TEST(DCacheUnit, VictimOverflowWritesBackDirtyLines)
{
    DCacheParams params;
    params.tech = PortTechConfig::dualPortBase();
    params.cache.sizeBytes = 256;
    params.cache.assoc = 2;
    params.victimEntries = 1;
    mem::MemHierarchy hierarchy{mem::L2Params{}, mem::DramParams{}};
    DCacheUnit unit(params, &hierarchy);

    Cycle now = 0;
    auto settle = [&]() { now = unit.drainAll(now + 1) + 1; };
    // Dirty two same-set lines, then force both out.
    for (Addr addr : {0x1000ull, 0x1080ull}) {
        unit.beginCycle(now);
        ASSERT_TRUE(unit.tryLoad(addr, 8, now).accepted);
        ASSERT_TRUE(unit.tryStore(addr, 8, now));
        unit.endCycle(now);
        settle();
    }
    std::uint64_t l2_dirty_before = hierarchy.l2().hits.value() +
                                    hierarchy.l2().misses.value();
    unit.beginCycle(now);
    ASSERT_TRUE(unit.tryLoad(0x1100, 8, now).accepted);  // evict #1
    unit.endCycle(now);
    settle();
    unit.beginCycle(now);
    ASSERT_TRUE(unit.tryLoad(0x1180, 8, now).accepted);  // evict #2:
    unit.endCycle(now);                                  // FIFO overflow
    settle();
    // The overflowing dirty victim reached the next level.
    EXPECT_GT(hierarchy.l2().hits.value() + hierarchy.l2().misses.value(),
              l2_dirty_before);
    EXPECT_EQ(unit.victimInserts.value(), 2u);
}

} // namespace
} // namespace cpe::core
