/**
 * @file
 * Unit tests for the pipeline building blocks: rename map, ROB,
 * issue queue, functional-unit pool, and the fetch unit driven by a
 * recorded trace.
 */

#include <gtest/gtest.h>

#include "cpu/fetch.hh"
#include "cpu/func_units.hh"
#include "cpu/issue_queue.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"
#include "func/executor.hh"
#include "prog/builder.hh"

namespace cpe::cpu {
namespace {

using namespace prog::reg;

TimingInst
makeInst(SeqNum seq, isa::Inst op)
{
    TimingInst inst;
    inst.di.seq = seq;
    inst.di.inst = op;
    inst.di.cls = isa::classOf(op.op);
    return inst;
}

TEST(Rename, TracksRawDependencies)
{
    RenameStage rename;
    // i1: add x5 = x1 + x2 ; i2: add x6 = x5 + x5 ; i3: add x5 = x6+x0
    auto i1 = makeInst(1, {isa::Opcode::ADD, 5, 1, 2, 0});
    auto i2 = makeInst(2, {isa::Opcode::ADD, 6, 5, 5, 0});
    auto i3 = makeInst(3, {isa::Opcode::ADD, 5, 6, 0, 0});
    rename.rename(i1);
    rename.rename(i2);
    rename.rename(i3);
    EXPECT_EQ(i1.srcProducer[0], 0u);   // architectural
    EXPECT_EQ(i2.srcProducer[0], 1u);   // produced by i1 (dedup'd)
    EXPECT_EQ(i3.srcProducer[0], 2u);

    // i4 reads x5: the *youngest* writer (i3) wins.
    auto i4 = makeInst(4, {isa::Opcode::ADD, 7, 5, 0, 0});
    rename.rename(i4);
    EXPECT_EQ(i4.srcProducer[0], 3u);

    // After i3 retires, x5 is architectural again.
    rename.retire(i3);
    auto i5 = makeInst(5, {isa::Opcode::ADD, 8, 5, 0, 0});
    rename.rename(i5);
    EXPECT_EQ(i5.srcProducer[0], 0u);
}

TEST(Rename, StoreSlotsAreAddrThenData)
{
    RenameStage rename;
    auto addr_prod = makeInst(1, {isa::Opcode::ADD, 5, 1, 2, 0});
    auto data_prod = makeInst(2, {isa::Opcode::ADD, 6, 1, 2, 0});
    rename.rename(addr_prod);
    rename.rename(data_prod);
    // sd x6, 0(x5)
    auto store = makeInst(3, {isa::Opcode::SD, isa::NoReg, 5, 6, 0});
    rename.rename(store);
    EXPECT_EQ(store.srcProducer[0], 1u);  // address
    EXPECT_EQ(store.srcProducer[1], 2u);  // data
}

TEST(Rob, InOrderCommitAndProducerLookup)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    auto *a = rob.push(makeInst(1, {isa::Opcode::ADD, 5, 1, 2, 0}));
    auto *b = rob.push(makeInst(2, {isa::Opcode::ADD, 6, 5, 0, 0}));
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_EQ(rob.head(), a);

    // Producer not done yet.
    EXPECT_FALSE(rob.producerDone(1, 100));
    a->done = true;
    a->doneCycle = 50;
    EXPECT_FALSE(rob.producerDone(1, 49));
    EXPECT_TRUE(rob.producerDone(1, 50));
    // Unknown/committed producers count as done; seq 0 always done.
    EXPECT_TRUE(rob.producerDone(0, 0));
    EXPECT_TRUE(rob.producerDone(999, 0));

    rob.popHead();
    EXPECT_EQ(rob.head(), b);
    EXPECT_TRUE(rob.producerDone(1, 0));  // committed
}

TEST(Rob, CapacityAndStability)
{
    Rob rob(3);
    std::vector<TimingInst *> ptrs;
    for (SeqNum seq = 1; seq <= 3; ++seq)
        ptrs.push_back(rob.push(makeInst(seq, {isa::Opcode::NOP,
                                               isa::NoReg, isa::NoReg,
                                               isa::NoReg, 0})));
    EXPECT_TRUE(rob.full());
    // Pointers must stay valid across pop/push churn (deque property).
    rob.popHead();
    rob.push(makeInst(4, {isa::Opcode::NOP, isa::NoReg, isa::NoReg,
                          isa::NoReg, 0}));
    EXPECT_EQ(ptrs[1]->di.seq, 2u);
    EXPECT_EQ(ptrs[2]->di.seq, 3u);
}

TEST(IssueQueueTest, AgeOrderAndReaping)
{
    IssueQueue iq(4);
    auto a = makeInst(1, {isa::Opcode::ADD, 5, 1, 2, 0});
    auto b = makeInst(2, {isa::Opcode::ADD, 6, 1, 2, 0});
    auto c = makeInst(3, {isa::Opcode::ADD, 7, 1, 2, 0});
    iq.add(&a);
    iq.add(&b);
    iq.add(&c);
    EXPECT_EQ(iq.entries()[0]->di.seq, 1u);
    EXPECT_EQ(iq.entries()[2]->di.seq, 3u);

    b.issued = true;
    iq.removeIssued();
    ASSERT_EQ(iq.size(), 2u);
    EXPECT_EQ(iq.entries()[0]->di.seq, 1u);
    EXPECT_EQ(iq.entries()[1]->di.seq, 3u);
    EXPECT_FALSE(iq.full());
}

TEST(FuPoolTest, PipelinedThroughput)
{
    FuPoolParams params;
    params.intAlu = {1, 1, true};
    FuPool pool(params);
    // One ALU, pipelined: one issue per cycle.
    EXPECT_EQ(pool.tryIssue(isa::InstClass::IntAlu, 10), 11u);
    EXPECT_EQ(pool.tryIssue(isa::InstClass::IntAlu, 10), 0u);
    EXPECT_TRUE(pool.canIssue(isa::InstClass::IntAlu, 11));
    EXPECT_EQ(pool.tryIssue(isa::InstClass::IntAlu, 11), 12u);
}

TEST(FuPoolTest, NonPipelinedOccupancy)
{
    FuPoolParams params;
    params.intDiv = {1, 20, false};
    FuPool pool(params);
    EXPECT_EQ(pool.tryIssue(isa::InstClass::IntDiv, 0), 20u);
    EXPECT_FALSE(pool.canIssue(isa::InstClass::IntDiv, 10));
    EXPECT_EQ(pool.tryIssue(isa::InstClass::IntDiv, 10), 0u);
    EXPECT_EQ(pool.structuralStalls.value(), 1u);
    EXPECT_EQ(pool.tryIssue(isa::InstClass::IntDiv, 20), 40u);
}

TEST(FuPoolTest, ClassMappingAndLatency)
{
    FuPool pool(FuPoolParams{});
    EXPECT_EQ(pool.latency(isa::InstClass::IntAlu), 1u);
    EXPECT_EQ(pool.latency(isa::InstClass::Branch), 1u);  // shares ALUs
    EXPECT_GT(pool.latency(isa::InstClass::FpMul), 1u);
    EXPECT_GT(pool.latency(isa::InstClass::IntDiv),
              pool.latency(isa::InstClass::IntMul));
    // Loads and stores share the AGUs.
    EXPECT_TRUE(pool.canIssue(isa::InstClass::Load, 0));
    EXPECT_TRUE(pool.canIssue(isa::InstClass::Store, 0));
}

// --- Fetch unit -------------------------------------------------------

struct FetchRig
{
    prog::Program program;
    func::Executor executor;
    BranchPredictor bpred;
    mem::MemHierarchy hierarchy;
    FetchUnit fetch;

    explicit FetchRig(prog::Program prog,
                      FetchParams params = FetchParams{})
        : program(std::move(prog)), executor(program),
          bpred(BranchPredictorParams{}),
          hierarchy(mem::L2Params{}, mem::DramParams{}),
          fetch(params, &executor, &bpred, &hierarchy)
    {
    }
};

prog::Program
straightLine(unsigned count)
{
    prog::Builder b("straight");
    for (unsigned i = 0; i < count; ++i)
        b.addi(t0, t0, 1);
    b.halt();
    return b.build();
}

TEST(Fetch, WidthLimitAndQueueing)
{
    FetchRig rig(straightLine(10));
    Cycle now = 0;
    // First access misses the I-cache: nothing fetched yet.
    rig.fetch.tick(now);
    EXPECT_TRUE(rig.fetch.queue().empty());
    EXPECT_GT(rig.fetch.icacheMissCycles.value(), 0u);

    // Wait out the fill, then groups of fetchWidth arrive per cycle.
    for (now = 1; now < 500 && rig.fetch.queue().empty(); ++now)
        rig.fetch.tick(now);
    EXPECT_LE(rig.fetch.queue().size(), 4u);
    std::size_t before = rig.fetch.queue().size();
    rig.fetch.tick(now);
    EXPECT_LE(rig.fetch.queue().size() - before, 4u);
}

TEST(Fetch, StopsAtQueueCapacity)
{
    FetchParams params;
    params.queueCapacity = 6;
    FetchRig rig(straightLine(40), params);
    for (Cycle now = 0; now < 500; ++now)
        rig.fetch.tick(now);
    EXPECT_LE(rig.fetch.queue().size(), 6u);
    EXPECT_GT(rig.fetch.queueFullBreaks.value(), 0u);
}

TEST(Fetch, FreezesOnMispredictUntilResolved)
{
    // A data-dependent branch the predictor cannot know cold: first
    // encounter of a taken branch predicted not-taken.
    prog::Builder b("br");
    prog::Label target = b.newLabel();
    b.loadImm(t0, 1);
    b.bne(t0, zero, target);  // taken, cold predictor says not-taken
    b.addi(t1, t1, 1);        // wrong path (never committed)
    b.bind(target);
    b.addi(t2, t2, 1);
    b.halt();
    FetchRig rig(b.build());

    // Run until the branch has been fetched.
    Cycle now = 0;
    SeqNum branch_seq = 0;
    for (; now < 1000 && !branch_seq; ++now) {
        rig.fetch.tick(now);
        for (auto &inst : rig.fetch.queue())
            if (inst.mispredicted)
                branch_seq = inst.di.seq;
    }
    ASSERT_NE(branch_seq, 0u);
    EXPECT_TRUE(rig.fetch.stalledOnBranch());

    // Frozen: further ticks fetch nothing.
    std::size_t frozen_size = rig.fetch.queue().size();
    rig.fetch.tick(now);
    rig.fetch.tick(now + 1);
    EXPECT_EQ(rig.fetch.queue().size(), frozen_size);

    // Resolution un-freezes at the given cycle.
    rig.fetch.resolveBranch(branch_seq, now + 5);
    rig.fetch.tick(now + 4);
    EXPECT_EQ(rig.fetch.queue().size(), frozen_size);
    rig.fetch.tick(now + 5);
    EXPECT_GT(rig.fetch.queue().size(), frozen_size);
    // The next fetched instruction is the branch target (committed
    // path), not the wrong path.
    const auto &resumed = rig.fetch.queue()[frozen_size];
    EXPECT_EQ(resumed.di.inst.op, isa::Opcode::ADDI);
    EXPECT_EQ(resumed.di.inst.rd, t2);
}

TEST(Fetch, WrongPathFetchPollutesICache)
{
    // A cold taken branch far forward: while frozen, the wrong-path
    // front end streams fall-through lines through the I-cache.
    prog::Builder b("wp");
    prog::Label target = b.newLabel();
    b.loadImm(t0, 1);
    b.bne(t0, zero, target);   // cold predictor: not-taken (wrong)
    for (int i = 0; i < 64; ++i)
        b.nop();               // wrong path: several I-lines
    b.bind(target);
    b.addi(t2, t2, 1);
    b.halt();
    prog::Program program = b.build();

    FetchParams params;
    params.modelWrongPathIFetch = true;
    FetchRig rig(std::move(program), params);

    Cycle now = 0;
    for (; now < 2000 && !rig.fetch.stalledOnBranch(); ++now)
        rig.fetch.tick(now);
    ASSERT_TRUE(rig.fetch.stalledOnBranch());

    // Let the wrong path run for a while.
    std::uint64_t misses_before = rig.fetch.icache().misses.value();
    for (Cycle t = now; t < now + 400; ++t)
        rig.fetch.tick(t);
    EXPECT_GT(rig.fetch.wrongPathLines.value(), 2u);
    EXPECT_GT(rig.fetch.wrongPathMisses.value(), 0u);
    EXPECT_GT(rig.fetch.icache().misses.value(), misses_before);

    // Resolution stops the wrong path and fetch resumes correctly.
    std::uint64_t wp_lines = rig.fetch.wrongPathLines.value();
    rig.fetch.resolveBranch(2, now + 401);
    // The target line is cold (the wrong path went the other way), so
    // allow the I-miss to resolve.
    bool fetched_target = false;
    for (Cycle t = now + 401; t < now + 900 && !fetched_target; ++t) {
        rig.fetch.tick(t);
        for (const auto &inst : rig.fetch.queue())
            fetched_target |= inst.di.inst.op == isa::Opcode::ADDI &&
                              inst.di.inst.rd == t2;
    }
    EXPECT_EQ(rig.fetch.wrongPathLines.value(), wp_lines);
    EXPECT_TRUE(fetched_target)
        << "fetch resumed somewhere other than the branch target";
}

TEST(Fetch, TraceExhaustion)
{
    FetchRig rig(straightLine(2));
    for (Cycle now = 0; now < 500 && !rig.fetch.traceExhausted(); ++now)
        rig.fetch.tick(now);
    EXPECT_TRUE(rig.fetch.traceExhausted());
    EXPECT_EQ(rig.fetch.queue().size(), 3u);  // 2 addi + halt
}

} // namespace
} // namespace cpe::cpu
