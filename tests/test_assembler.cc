/**
 * @file
 * Text-assembler tests: syntax coverage, execution of assembled
 * programs, directives, pseudo-ops, and error reporting.
 */

#include <gtest/gtest.h>

#include "func/executor.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "prog/assembler.hh"
#include "prog/builder.hh"
#include "util/random.hh"

namespace cpe::prog {
namespace {

using namespace reg;

func::Executor
assembleAndRun(const std::string &source)
{
    auto result = assemble("test", source);
    EXPECT_TRUE(result.ok) << result.error;
    func::Executor exec(result.program);
    exec.run();
    return exec;
}

TEST(Assembler, MinimalProgram)
{
    auto exec = assembleAndRun(R"(
        .text
        addi t0, zero, 42
        halt
    )");
    EXPECT_EQ(exec.state().readReg(t0), 42u);
}

TEST(Assembler, DefaultSectionIsText)
{
    auto result = assemble("t", "addi x5, x0, 1\nhalt\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.program.size(), 2u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto exec = assembleAndRun(R"(
        # full-line comment
        addi t0, zero, 1   # trailing comment
        addi t0, t0, 2     ; semicolon style
        addi t0, t0, 4     // C++ style

        halt
    )");
    EXPECT_EQ(exec.state().readReg(t0), 7u);
}

TEST(Assembler, LabelsAndBranches)
{
    auto exec = assembleAndRun(R"(
        .text
        li   t0, 5
        li   t1, 0
    loop:
        addi t1, t1, 3
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
    )");
    EXPECT_EQ(exec.state().readReg(t1), 15u);
}

TEST(Assembler, CallRetAndJumps)
{
    auto exec = assembleAndRun(R"(
        j main
    double_it:
        add a0, a0, a0
        ret
    main:
        li   a0, 21
        call double_it
        halt
    )");
    EXPECT_EQ(exec.state().readReg(a0), 42u);
}

TEST(Assembler, DataDirectivesAndLoads)
{
    auto exec = assembleAndRun(R"(
        .data
    nums:   .word64 10, 20, 30
    bytes:  .byte 1, 2, 3, 4
    pi:     .double 3.25
    buf:    .space 64, 64

        .text
        la  s0, nums
        ld  t0, 0(s0)
        ld  t1, 8(s0)
        ld  t2, 16(s0)
        add t0, t0, t1
        add t0, t0, t2      # 60
        la  s1, bytes
        lbu t3, 3(s1)       # 4
        la  s2, pi
        fld f1, 0(s2)
        la  s3, buf
        sd  t0, 0(s3)
        halt
    )");
    EXPECT_EQ(exec.state().readReg(t0), 60u);
    EXPECT_EQ(exec.state().readReg(t3), 4u);
    EXPECT_DOUBLE_EQ(exec.state().readFpReg(f(1)), 3.25);
    EXPECT_EQ(exec.memory().read(exec.state().readReg(s3), 8), 60u);
    // .space alignment honoured.
    EXPECT_EQ(exec.state().readReg(s3) % 64, 0u);
}

TEST(Assembler, MemoryOperandForms)
{
    auto exec = assembleAndRun(R"(
        .data
    slot:  .space 32
        .text
        la  s0, slot
        li  t0, 0x1234
        sd  t0, 8(s0)
        ld  t1, 8(s0)
        sh  t0, 0(s0)
        lhu t2, 0(s0)
        sb  t0, 24(s0)
        lb  t3, 24(s0)
        halt
    )");
    EXPECT_EQ(exec.state().readReg(t1), 0x1234u);
    EXPECT_EQ(exec.state().readReg(t2), 0x1234u);
    EXPECT_EQ(exec.state().readReg(t3), 0x34u);
}

TEST(Assembler, RegisterSpellings)
{
    auto exec = assembleAndRun(R"(
        addi x10, x0, 9
        addi x11, zero, 8
        add  x10, x10, x11
        fcvt.i2f f3, x10
        halt
    )");
    EXPECT_EQ(exec.state().readReg(10), 17u);
    EXPECT_DOUBLE_EQ(exec.state().readFpReg(f(3)), 17.0);
}

TEST(Assembler, FpAndSystemOps)
{
    auto exec = assembleAndRun(R"(
        .data
    vals:  .double 1.5, -2.5
        .text
        la   s0, vals
        fld  f1, 0(s0)
        fld  f2, 8(s0)
        fadd f3, f1, f2
        fmul f4, f1, f2
        fneg f5, f2
        fcmplt t0, f2, f1
        emode
        nop
        xmode
        halt
    )");
    EXPECT_DOUBLE_EQ(exec.state().readFpReg(f(3)), -1.0);
    EXPECT_DOUBLE_EQ(exec.state().readFpReg(f(4)), -3.75);
    EXPECT_DOUBLE_EQ(exec.state().readFpReg(f(5)), 2.5);
    EXPECT_EQ(exec.state().readReg(t0), 1u);
}

TEST(Assembler, LiHandlesLargeConstants)
{
    auto exec = assembleAndRun(R"(
        li t0, 0xdeadbeef
        li t1, -123456789
        halt
    )");
    EXPECT_EQ(exec.state().readReg(t0), 0xdeadbeefull);
    EXPECT_EQ(static_cast<std::int64_t>(exec.state().readReg(t1)),
              -123456789);
}

// --- error reporting ---------------------------------------------------

TEST(Assembler, ReportsUnknownMnemonic)
{
    auto result = assemble("t", "frobnicate t0, t1\nhalt\n");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("line 1"), std::string::npos);
    EXPECT_NE(result.error.find("frobnicate"), std::string::npos);
}

TEST(Assembler, ReportsBadRegister)
{
    auto result = assemble("t", "add t0, t1, q7\nhalt\n");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("q7"), std::string::npos);
}

TEST(Assembler, ReportsOutOfRangeImmediate)
{
    auto result = assemble("t", "addi t0, t0, 99999\nhalt\n");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("immediate"), std::string::npos);
}

TEST(Assembler, ReportsUndefinedLabel)
{
    auto result = assemble("t", "j nowhere\nhalt\n");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("nowhere"), std::string::npos);
}

TEST(Assembler, ReportsWrongOperandCount)
{
    auto result = assemble("t", "add t0, t1\nhalt\n");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("operands"), std::string::npos);
}

TEST(Assembler, ReportsInstructionInDataSection)
{
    auto result = assemble("t", ".data\naddi t0, t0, 1\n");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find(".data"), std::string::npos);
}

TEST(Assembler, AssembledProgramMatchesBuilderSemantics)
{
    // The same algorithm through both front ends must produce the
    // same architectural result.
    auto asm_exec = assembleAndRun(R"(
        .data
    arr:  .word64 5, 3, 8, 1
        .text
        la   s0, arr
        li   t0, 4
        li   t1, 0
    sum:
        ld   t2, 0(s0)
        add  t1, t1, t2
        addi s0, s0, 8
        addi t0, t0, -1
        bne  t0, zero, sum
        halt
    )");

    Builder b("builder");
    Addr arr = b.allocData(4 * 8, 8);
    const std::uint64_t values[] = {5, 3, 8, 1};
    for (unsigned i = 0; i < 4; ++i)
        b.setData64(arr + 8 * i, values[i]);
    b.loadImm(s0, arr);
    b.loadImm(t0, 4);
    b.loadImm(t1, 0);
    Label sum = b.here();
    b.ld(t2, 0, s0);
    b.add(t1, t1, t2);
    b.addi(s0, s0, 8);
    b.addi(t0, t0, -1);
    b.bne(t0, zero, sum);
    b.halt();
    func::Executor built_exec(b.build());
    built_exec.run();

    EXPECT_EQ(asm_exec.state().readReg(t1),
              built_exec.state().readReg(t1));
    EXPECT_EQ(asm_exec.state().readReg(t1), 17u);
}

/**
 * Property: the disassembler's output for any data-path instruction is
 * valid assembler input that reproduces the instruction exactly —
 * the two tools agree on the surface syntax.  (Control flow is
 * excluded: disassembly prints numeric offsets while the assembler
 * requires labels.)
 */
TEST(Assembler, DisassemblyRoundTripsDataOps)
{
    Rng rng(4242);
    unsigned checked = 0;
    for (int trial = 0; trial < 3000; ++trial) {
        isa::Inst inst;
        inst.op = static_cast<isa::Opcode>(
            rng.below(static_cast<std::uint64_t>(
                isa::Opcode::NumOpcodes)));
        if (isa::isControl(inst.op))
            continue;
        inst.rd = static_cast<RegIndex>(rng.below(isa::NumArchRegs));
        inst.rs1 = static_cast<RegIndex>(rng.below(isa::NumArchRegs));
        inst.rs2 = static_cast<RegIndex>(rng.below(isa::NumArchRegs));
        inst.imm = isa::isJFormat(inst.op)
            ? rng.range(-(1 << 17), (1 << 17) - 1)
            : rng.range(-2048, 2047);
        // Shift amounts must be valid.
        if (inst.op == isa::Opcode::SLLI ||
            inst.op == isa::Opcode::SRLI ||
            inst.op == isa::Opcode::SRAI) {
            inst.imm = static_cast<std::int64_t>(rng.below(64));
        }
        auto encoded = isa::encode(inst);
        if (!encoded.ok())
            continue;  // operand constellation invalid for the format
        isa::Inst canonical = *isa::decode(encoded.word);

        std::string text = isa::disassemble(canonical) + "\nhalt\n";
        auto assembled = assemble("roundtrip", text);
        ASSERT_TRUE(assembled.ok)
            << "disassembly not re-assemblable: '" << text
            << "': " << assembled.error;
        ASSERT_EQ(assembled.program.size(), 2u);
        EXPECT_EQ(assembled.program.text()[0], canonical)
            << isa::disassemble(canonical) << " vs "
            << isa::disassemble(assembled.program.text()[0]);
        ++checked;
    }
    EXPECT_GT(checked, 800u);
}

} // namespace
} // namespace cpe::prog
