/**
 * @file
 * Line-buffer ("load-all") tests: capture windows, lookup coverage,
 * LRU allocation, store patch/invalidate policies, exclusion masks,
 * L1-eviction invalidation, and full flushes.
 */

#include <gtest/gtest.h>

#include "core/line_buffer.hh"
#include "core/port_arbiter.hh"

namespace cpe::core {
namespace {

constexpr unsigned Line = 32;

TEST(LineBuffer, DisabledFileNeverHits)
{
    LineBufferFile lb("lb", 0, Line, LineBufferWritePolicy::Update);
    EXPECT_FALSE(lb.enabled());
    lb.capture(0x1000, 32, 0);
    EXPECT_FALSE(lb.lookup(0x1000, 8));
}

TEST(LineBuffer, CaptureWindowThenHit)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    // An 8-byte port access at 0x1008 captures the aligned window.
    lb.capture(0x1008, 8, 0);
    EXPECT_TRUE(lb.lookup(0x1008, 8));
    EXPECT_TRUE(lb.lookup(0x100c, 4));
    EXPECT_FALSE(lb.lookup(0x1000, 8));   // outside the window
    EXPECT_FALSE(lb.lookup(0x1010, 8));
    EXPECT_EQ(lb.lineMask(0x1000), 0xff00ull);
}

TEST(LineBuffer, WideCaptureCoversWholeLine)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1010, 32, 0);  // load-all-wide: full line
    for (unsigned off = 0; off < Line; off += 8)
        EXPECT_TRUE(lb.lookup(0x1000 + off, 8)) << off;
    EXPECT_FALSE(lb.lookup(0x1020, 8));  // next line
}

TEST(LineBuffer, SixteenByteWindowAlignment)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1018, 16, 0);  // 16 B window containing 0x18: [0x10,0x20)
    EXPECT_TRUE(lb.lookup(0x1010, 8));
    EXPECT_TRUE(lb.lookup(0x1018, 8));
    EXPECT_FALSE(lb.lookup(0x1008, 8));
}

TEST(LineBuffer, WindowsAccumulatePerLine)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1000, 8, 0);
    lb.capture(0x1010, 8, 0);
    EXPECT_EQ(lb.validBuffers(), 1u);  // same line, one buffer
    EXPECT_TRUE(lb.lookup(0x1000, 8));
    EXPECT_TRUE(lb.lookup(0x1010, 8));
    EXPECT_FALSE(lb.lookup(0x1008, 8));
}

TEST(LineBuffer, LruVictimSelection)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1000, 32, 0);
    lb.capture(0x2000, 32, 0);
    EXPECT_TRUE(lb.lookup(0x1000, 8));  // 0x1000 is MRU now
    lb.capture(0x3000, 32, 0);          // evicts LRU = 0x2000
    EXPECT_TRUE(lb.lookup(0x1000, 8));
    EXPECT_FALSE(lb.lookup(0x2000, 8));
    EXPECT_TRUE(lb.lookup(0x3000, 8));
    EXPECT_EQ(lb.replacements.value(), 1u);
}

TEST(LineBuffer, ExclusionMaskKeepsStaleBytesInvalid)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    // The store buffer owns bytes 8-15 of the line: the cache copy is
    // stale there, so a capture must not mark them valid.
    std::uint64_t exclude = 0xff00;
    lb.capture(0x1000, 32, exclude);
    EXPECT_TRUE(lb.lookup(0x1000, 8));
    EXPECT_FALSE(lb.lookup(0x1008, 8));
    EXPECT_TRUE(lb.lookup(0x1010, 8));
}

TEST(LineBuffer, UpdatePolicyPatchesStores)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1000, 8, 0);
    lb.onStore(0x1010, 8);  // patches bytes 16-23 valid
    EXPECT_TRUE(lb.lookup(0x1010, 8));
    EXPECT_EQ(lb.storePatches.value(), 1u);
    EXPECT_EQ(lb.validBuffers(), 1u);
}

TEST(LineBuffer, InvalidatePolicyDropsBuffer)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Invalidate);
    lb.capture(0x1000, 32, 0);
    lb.onStore(0x1010, 8);
    EXPECT_FALSE(lb.lookup(0x1000, 8));
    EXPECT_EQ(lb.storeInvals.value(), 1u);
    EXPECT_EQ(lb.validBuffers(), 0u);
}

TEST(LineBuffer, StoreToUncachedLineIsNoop)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.onStore(0x5000, 8);
    EXPECT_EQ(lb.storePatches.value(), 0u);
    EXPECT_EQ(lb.validBuffers(), 0u);
}

TEST(LineBuffer, EvictionInvalidates)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1000, 32, 0);
    lb.invalidateLine(0x1000);
    EXPECT_FALSE(lb.lookup(0x1000, 8));
    EXPECT_EQ(lb.lineInvals.value(), 1u);
}

TEST(LineBuffer, FlushAll)
{
    LineBufferFile lb("lb", 4, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1000, 32, 0);
    lb.capture(0x2000, 32, 0);
    lb.flushAll();
    EXPECT_EQ(lb.validBuffers(), 0u);
    EXPECT_FALSE(lb.lookup(0x1000, 8));
    EXPECT_EQ(lb.flushes.value(), 1u);
}

TEST(LineBuffer, HitRateFormula)
{
    LineBufferFile lb("lb", 2, Line, LineBufferWritePolicy::Update);
    lb.capture(0x1000, 32, 0);
    lb.lookup(0x1000, 8);   // hit
    lb.lookup(0x1008, 8);   // hit
    lb.lookup(0x2000, 8);   // miss
    lb.lookup(0x3000, 8);   // miss
    EXPECT_DOUBLE_EQ(lb.statGroup().formulaValue("hit_rate"), 0.5);
}

// --- Port arbiter -----------------------------------------------------

TEST(PortArbiter, SinglePortOnePerCycle)
{
    PortArbiter ports("p", 1);
    EXPECT_EQ(ports.freePorts(10), 1u);
    EXPECT_TRUE(ports.tryAcquire(10));
    EXPECT_FALSE(ports.tryAcquire(10));
    EXPECT_EQ(ports.freePorts(10), 0u);
    EXPECT_TRUE(ports.tryAcquire(11));
    EXPECT_EQ(ports.grants.value(), 2u);
    EXPECT_EQ(ports.rejections.value(), 1u);
}

TEST(PortArbiter, DualPortTwoPerCycle)
{
    PortArbiter ports("p", 2);
    EXPECT_TRUE(ports.tryAcquire(5));
    EXPECT_TRUE(ports.tryAcquire(5));
    EXPECT_FALSE(ports.tryAcquire(5));
    EXPECT_EQ(ports.freePorts(6), 2u);
}

TEST(PortArbiter, MultiCycleOccupancy)
{
    PortArbiter ports("p", 1);
    EXPECT_TRUE(ports.tryAcquire(10, 4));  // e.g. a line fill
    EXPECT_FALSE(ports.tryAcquire(12));
    EXPECT_FALSE(ports.tryAcquire(13));
    EXPECT_TRUE(ports.tryAcquire(14));
}

TEST(PortArbiter, UtilizationStats)
{
    PortArbiter ports("p", 2);
    ports.tryAcquire(0);
    ports.tickStats(0);  // one busy, one idle
    ports.tickStats(1);  // both idle
    EXPECT_EQ(ports.busyPortCycles.value(), 1u);
    EXPECT_EQ(ports.idlePortCycles.value(), 3u);
    EXPECT_DOUBLE_EQ(ports.statGroup().formulaValue("utilization"), 0.25);
}

} // namespace
} // namespace cpe::core
