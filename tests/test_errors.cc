/**
 * @file
 * The fault-isolation layer end to end: SimConfig::validate()
 * diagnostics for every class of bad machine, the forward-progress
 * watchdog and its pipeline snapshot, SweepRunner::runOutcomes'
 * one-bad-point-never-kills-the-grid contract, and the cpe_eval
 * --validate / --keep-going surfaces.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/driver.hh"
#include "exp/experiment.hh"
#include "exp/registry.hh"
#include "sim/config.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "sim/sweep_runner.hh"
#include "util/error.hh"
#include "util/logging.hh"

#include "expect_error.hh"

namespace cpe {
namespace {

/** True when validate() reports a diagnostic anchored at @p field. */
bool
flags(const sim::SimConfig &config, const std::string &field)
{
    auto diagnostics = config.validate();
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [&](const sim::ConfigDiagnostic &d) {
                           return d.field == field;
                       });
}

sim::SimConfig
goodConfig()
{
    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = "crc";
    return config;
}

TEST(ConfigValidate, DefaultsAreClean)
{
    EXPECT_TRUE(goodConfig().validate().empty());
}

TEST(ConfigValidate, UnknownWorkload)
{
    auto config = goodConfig();
    config.workloadName = "no-such-kernel";
    EXPECT_TRUE(flags(config, "workload"));
}

TEST(ConfigValidate, CacheGeometry)
{
    auto config = goodConfig();
    config.core.dcache.cache.assoc = 0;
    EXPECT_TRUE(flags(config, "l1d.assoc"));

    config = goodConfig();
    config.core.dcache.cache.sizeBytes = 12 * 1024;  // not a power of 2
    EXPECT_TRUE(flags(config, "l1d.size"));

    config = goodConfig();
    config.core.fetch.icache.lineBytes = 48;
    EXPECT_TRUE(flags(config, "l1i.line"));

    config = goodConfig();
    config.l2.cache.assoc = 3;  // 512K/32B/3 -> non-pow2 sets
    EXPECT_TRUE(flags(config, "l2.assoc"));
}

TEST(ConfigValidate, CoreAndPredictor)
{
    auto config = goodConfig();
    config.core.robSize = 0;
    EXPECT_TRUE(flags(config, "core.rob"));

    config = goodConfig();
    config.core.bpred.tableEntries = 1000;
    EXPECT_TRUE(flags(config, "bpred.table_entries"));

    config = goodConfig();
    config.core.fetch.fetchWidth = config.core.fetch.queueCapacity + 1;
    EXPECT_TRUE(flags(config, "core.fetch_width"));
}

TEST(ConfigValidate, PortSubsystem)
{
    auto config = goodConfig();
    config.core.dcache.tech.ports = 0;
    EXPECT_TRUE(flags(config, "tech.ports"));

    config = goodConfig();
    config.core.dcache.tech.banks = 3;
    EXPECT_TRUE(flags(config, "tech.banks"));

    config = goodConfig();
    config.core.dcache.tech.portWidthBytes = 4;
    EXPECT_TRUE(flags(config, "tech.width"));

    config = goodConfig();
    config.core.dcache.tech.storeBufferEntries = 300;
    EXPECT_TRUE(flags(config, "tech.store_buffer"));

    config = goodConfig();
    config.core.dcache.mshrs = 0;
    EXPECT_TRUE(flags(config, "l1d.mshrs"));
}

TEST(ConfigValidate, RunLengthAndWatchdog)
{
    auto config = goodConfig();
    config.warmupInsts = 600'000'000;
    EXPECT_TRUE(flags(config, "warmup_insts"));

    config = goodConfig();
    config.core.maxCycles = 0;
    EXPECT_TRUE(flags(config, "core.max_cycles"));

    config = goodConfig();
    config.core.noCommitCycleLimit = config.core.maxCycles + 1;
    EXPECT_TRUE(flags(config, "core.no_commit_limit"));
}

TEST(ConfigValidate, OrThrowReportsEveryDiagnosticAtOnce)
{
    auto config = goodConfig();
    config.core.dcache.cache.assoc = 0;
    config.core.dcache.tech.banks = 3;
    try {
        config.validateOrThrow();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &error) {
        EXPECT_EQ(error.kind(), "config");
        std::string what = error.what();
        EXPECT_NE(what.find("l1d.assoc"), std::string::npos) << what;
        EXPECT_NE(what.find("tech.banks"), std::string::npos) << what;
    }
}

TEST(ConfigValidate, SimulateRejectsBadConfigBeforeBuilding)
{
    auto config = goodConfig();
    config.core.dcache.cache.assoc = 0;
    CPE_EXPECT_THROW_MSG(sim::simulate(config), ConfigError,
                         "l1d.assoc");
}

TEST(ConfigValidate, WatchdogAppearsInDescribe)
{
    EXPECT_NE(goodConfig().describe().find("watchdog"),
              std::string::npos);
}

TEST(Watchdog, NoCommitLimitTripsWithSnapshot)
{
    auto config = goodConfig();
    config.core.noCommitCycleLimit = 2;  // trips during pipeline fill
    try {
        sim::simulate(config);
        FAIL() << "expected ProgressError";
    } catch (const ProgressError &error) {
        EXPECT_EQ(error.kind(), "progress");
        const Json &snapshot = error.snapshot();
        ASSERT_FALSE(snapshot.isNull());
        // The snapshot must name every structure a wedge could be
        // stuck behind.
        for (const char *key : {"rob", "issue_queue", "lsq",
                                "store_buffer", "mshrs", "fetch"})
            EXPECT_NE(snapshot.find(key), nullptr) << key;
        EXPECT_EQ(snapshot.at("committed_insts", "snap").asNumber(), 0);
        // A plain run is in its measurement region from cycle 0.
        EXPECT_EQ(snapshot.at("phase", "snap").asString(), "measure");
        EXPECT_NE(std::string(error.what()).find("pipeline snapshot"),
                  std::string::npos);
    }
}

TEST(Watchdog, SampledMeasureLegCarriesPhaseInSnapshot)
{
    // A wedge inside a sampled run's DetailedMeasure leg: the sampled
    // schedule fast-forwards, drops straight into measurement (no
    // warm-up leg), and the watchdog trips there — the snapshot must
    // say which phase died.
    auto config = goodConfig();
    config.sample.mode = sim::SampleParams::Mode::Periodic;
    config.sample.warmupInsts = 0;
    config.core.noCommitCycleLimit = 2;
    try {
        sim::simulate(config);
        FAIL() << "expected ProgressError";
    } catch (const ProgressError &error) {
        const Json &snapshot = error.snapshot();
        ASSERT_FALSE(snapshot.isNull());
        ASSERT_NE(snapshot.find("phase"), nullptr);
        EXPECT_EQ(snapshot.at("phase", "snap").asString(), "measure");
    }
}

TEST(Watchdog, AbsoluteCycleBudgetTrips)
{
    auto config = goodConfig();
    config.core.maxCycles = 100;
    config.core.noCommitCycleLimit = 0;  // isolate the budget check
    CPE_EXPECT_THROW_MSG(sim::simulate(config), ProgressError,
                         "cycle budget");
}

TEST(SweepOutcomes, OneBadPointNeverKillsTheGrid)
{
    VerboseScope quiet(false);
    std::vector<sim::SimConfig> configs;
    for (const char *workload : {"crc", "saxpy", "strops"}) {
        auto config = goodConfig();
        config.workloadName = workload;
        configs.push_back(config);
    }
    configs[1].core.dcache.cache.assoc = 0;  // deterministic failure

    auto outcomes = sim::SweepRunner(2).runOutcomes(configs);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[2].ok());
    EXPECT_GT(outcomes[0].result.insts, 0u);

    const auto &failed = outcomes[1];
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.workload, "saxpy");
    EXPECT_EQ(failed.errorKind, "config");
    // Config failures are deterministic: no retry.
    EXPECT_EQ(failed.attempts, 1u);
    EXPECT_GE(failed.wallMs, 0.0);
    ASSERT_TRUE(failed.exception != nullptr);

    Json record = failed.errorJson();
    for (const char *key : {"workload", "config", "kind", "message",
                            "attempts", "wall_ms"})
        EXPECT_NE(record.find(key), nullptr) << key;
    EXPECT_EQ(record.find("snapshot"), nullptr)
        << "config errors carry no pipeline snapshot";
}

TEST(SweepOutcomes, ProgressFailureCarriesSnapshot)
{
    VerboseScope quiet(false);
    auto config = goodConfig();
    config.core.noCommitCycleLimit = 2;
    auto outcomes = sim::SweepRunner(1).runOutcomes({config});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].errorKind, "progress");
    EXPECT_NE(outcomes[0].errorJson().find("snapshot"), nullptr);
}

/** Run evalMain over an argv literal list. */
int
evalWith(std::vector<std::string> args)
{
    args.insert(args.begin(), "cpe_eval");
    std::vector<char *> argv;
    for (auto &arg : args)
        argv.push_back(arg.data());
    int rc = exp::evalMain(static_cast<int>(argv.size()), argv.data());
    exp::setFaultInjection({});  // never leak a plan into other tests
    return rc;
}

TEST(EvalValidate, CleanExperimentPasses)
{
    EXPECT_EQ(evalWith({"--validate", "--run", "T3", "--workloads",
                        "crc"}),
              0);
}

TEST(EvalValidate, InjectedConfigFaultFailsWithoutRunning)
{
    // --validate FAIL is a configuration error: exit code 2.
    EXPECT_EQ(evalWith({"--validate", "--run", "T3", "--workloads",
                        "crc", "--fault-inject", "crc:config"}),
              2);
}

TEST(EvalKeepGoing, InvalidRunBecomesStructuredFailure)
{
    // The injected config fault fails validate() inside the sweep;
    // keep-going turns it into an "errors" record and exit 1 instead
    // of an uncaught ConfigError.
    EXPECT_EQ(evalWith({"--run", "T3", "--workloads", "crc",
                        "--keep-going", "--format", "json",
                        "--fault-inject", "crc:config"}),
              1);
}

TEST(EvalKeepGoing, HealthySiblingIsBitIdenticalToStandalone)
{
    // A hang-faulted run beside a healthy one, keep-going, serial
    // workers: the failure must leave zero residue in the sibling —
    // not a frozen stat, not a counter, not a byte.
    VerboseScope quiet(false);
    auto healthy = goodConfig();
    auto hung = goodConfig();
    hung.workloadName = "copy";
    hung.core.noCommitCycleLimit = 2;

    sim::SimResult standalone = sim::simulate(healthy);
    auto outcomes =
        sim::SweepRunner(1).runOutcomes({hung, healthy});
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].errorKind, "progress");
    EXPECT_NE(outcomes[0].errorJson().find("snapshot"), nullptr);
    ASSERT_TRUE(outcomes[1].ok());
    EXPECT_EQ(sim::resultToJson(outcomes[1].result).dump(),
              sim::resultToJson(standalone).dump());
}

// The documented exit-code contract (kUsage, docs/robustness.md):
// 0 success, 1 run failures, 2 config/usage errors, 3 baseline drift.

TEST(EvalExitCodes, SuccessIsZero)
{
    EXPECT_EQ(evalWith({"--validate", "--run", "T3", "--workloads",
                        "crc"}),
              0);
}

TEST(EvalExitCodes, KeepGoingRunFailureIsOne)
{
    EXPECT_EQ(evalWith({"--run", "T3", "--workloads", "crc",
                        "--keep-going", "--format", "json",
                        "--fault-inject", "crc:hang"}),
              1);
}

TEST(EvalExitCodes, UnknownFaultKindIsConfigErrorTwo)
{
    // Satellite contract: a typo'd --fault-inject KIND is rejected
    // with a structured ConfigError naming the valid kinds, before
    // anything runs.
    EXPECT_EQ(evalWith({"--validate", "--run", "T3", "--workloads",
                        "crc", "--fault-inject", "crc:bogus"}),
              2);
}

TEST(EvalExitCodes, UnknownChaosKeyIsConfigErrorTwo)
{
    EXPECT_EQ(evalWith({"--validate", "--run", "T3", "--workloads",
                        "crc", "--chaos", "sede=1"}),
              2);
}

TEST(EvalExitCodes, BaselineDriftIsThree)
{
    // A doctored baseline whose geomeans can't possibly match: the
    // gate must report drift with its own exit code, distinct from
    // run failures and usage errors.
    VerboseScope quiet(false);
    auto dir = std::filesystem::temp_directory_path() /
               "cpe_drift_baseline_test";
    std::filesystem::create_directories(dir);
    const exp::Experiment &t3 =
        exp::ExperimentRegistry::instance().get("T3");
    Json geomeans = Json::object();
    Json ipc = Json::object();
    for (const auto &variant : t3.variants())
        geomeans[variant.label] = 999.0;
    Json workloads = Json::array();
    workloads.push("crc");
    Json doc = Json::object();
    doc["experiment"] = "T3";
    doc["schema"] = 1;
    doc["workloads"] = std::move(workloads);
    doc["geomean_ipc"] = std::move(geomeans);
    doc["ipc"] = std::move(ipc);
    {
        std::ofstream out(dir / "T3.json");
        out << doc.dump(2) << "\n";
    }
    EXPECT_EQ(evalWith({"--check", "--run", "T3", "--baseline",
                        dir.string()}),
              3);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace cpe
