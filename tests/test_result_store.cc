/**
 * @file
 * serve::ResultStore in isolation: byte-exact hit/miss/insert round
 * trips, key sensitivity (machine text, workload options, experiment
 * id, store version — and formatting-invariance via the canonical
 * machine-file round trip), corrupt-entry fallback without poisoning
 * the store, chaos-injected store I/O failures, and single-flight
 * dedup executing exactly once under concurrent identical requests.
 */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/result_store.hh"
#include "sim/config.hh"
#include "sim/config_file.hh"
#include "sim/run_journal.hh"
#include "sim/simulator.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace cpe {
namespace {

/** A scratch store directory, removed on scope exit. */
struct ScratchStore
{
    std::filesystem::path dir;

    explicit ScratchStore(const std::string &name)
        : dir(std::filesystem::temp_directory_path() / name)
    {
        std::filesystem::remove_all(dir);
    }
    ~ScratchStore()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

sim::SimConfig
storeConfig(const std::string &workload)
{
    sim::SimConfig config = sim::SimConfig::defaults();
    config.workloadName = workload;
    config.label = "store-test";
    return config;
}

std::string
keyOf(const sim::SimConfig &config, const std::string &experiment = "F5")
{
    return serve::ResultStore::keyFor(sim::toMachineFile(config),
                                      experiment);
}

/** A fully hand-made result: store tests need bytes, not physics. */
sim::SimResult
fakeResult(const std::string &workload, double ipc)
{
    sim::SimResult result;
    result.workload = workload;
    result.configTag = "fake";
    result.cycles = 1234;
    result.insts = 5678;
    result.ipc = ipc;
    result.statsDump = "stats text\nwith lines\n";
    result.statsJson = "{\"fake\":true}";
    return result;
}

TEST(ResultStore, HitMissInsertRoundTripIsByteExact)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_roundtrip");
    serve::ResultStore store(scratch.dir.string());

    sim::SimConfig config = storeConfig("crc");
    std::string key = keyOf(config);

    sim::SimResult loaded;
    EXPECT_FALSE(store.lookup(key, loaded)) << "cold store is a miss";
    EXPECT_EQ(store.entries(), 0u);

    sim::SimResult result = sim::simulate(config);
    store.insert(key, result);
    EXPECT_EQ(store.entries(), 1u);

    ASSERT_TRUE(store.lookup(key, loaded));
    // The entry embeds resultToJson, whose doubles are shortest-round-
    // trip — a store round trip must reproduce the exact bytes.
    EXPECT_EQ(sim::resultToJson(loaded).dump(),
              sim::resultToJson(result).dump());

    serve::ResultStore::Stats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.inserts, 1u);
}

TEST(ResultStore, EntrySurvivesReopen)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_reopen");
    sim::SimResult result = fakeResult("crc", 1.25);
    std::string key = keyOf(storeConfig("crc"));
    {
        serve::ResultStore store(scratch.dir.string());
        store.insert(key, result);
    }
    serve::ResultStore reopened(scratch.dir.string());
    EXPECT_EQ(reopened.entries(), 1u);
    sim::SimResult loaded;
    ASSERT_TRUE(reopened.lookup(key, loaded));
    EXPECT_EQ(sim::resultToJson(loaded).dump(),
              sim::resultToJson(result).dump());
}

TEST(ResultStore, KeyTracksContentNotFormatting)
{
    sim::SimConfig config = storeConfig("crc");
    std::string key = keyOf(config);
    EXPECT_EQ(key, keyOf(config)) << "stable";

    // Workload options all perturb the key...
    sim::SimConfig scaled = storeConfig("crc");
    scaled.workload.scale = 2;
    EXPECT_NE(keyOf(scaled), key);

    sim::SimConfig reseeded = storeConfig("crc");
    reseeded.workload.seed = 7;
    EXPECT_NE(keyOf(reseeded), key);

    EXPECT_NE(keyOf(storeConfig("copy")), key);

    // ...as do timing knobs, the experiment id, and the version.
    sim::SimConfig timing = storeConfig("crc");
    timing.core.dcache.tech.storeBufferEntries += 1;
    EXPECT_NE(keyOf(timing), key);

    EXPECT_NE(keyOf(config, "F6"), key);
    EXPECT_NE(serve::ResultStore::keyFor(sim::toMachineFile(config), "F5",
                                         "serve-999|cpet-0"),
              key);

    // A disarmed chaos spec must not perturb the key (it is not
    // serialized), so pre-chaos stores keep resolving; arming it must.
    sim::SimConfig with_chaos = storeConfig("crc");
    EXPECT_EQ(keyOf(with_chaos), key);
    with_chaos.chaos = util::ChaosSpec::parse("seed=1,rate=0.5");
    EXPECT_NE(keyOf(with_chaos), key);
}

TEST(ResultStore, ReorderedEquivalentMachineTextHitsSameKey)
{
    // Two hand-written descriptions of one machine: reordered
    // sections, comments, and loose whitespace.  The canonical
    // round trip must collapse them to a single cache entry.
    const std::string plain = "workload = crc\n"
                              "[core]\n"
                              "issue_width = 8\n"
                              "[tech]\n"
                              "ports = 1\n"
                              "store_buffer = 8\n";
    const std::string reordered = "# same machine, different prose\n"
                                  "workload = crc\n"
                                  "\n"
                                  "[tech]\n"
                                  "store_buffer   =   8\n"
                                  "ports = 1\n"
                                  "\n"
                                  "# the core section, later this time\n"
                                  "[core]\n"
                                  "issue_width = 8\n";
    EXPECT_NE(plain, reordered);
    EXPECT_EQ(serve::ResultStore::keyFor(plain, "F5"),
              serve::ResultStore::keyFor(reordered, "F5"));

    // And a genuinely different machine must not collide.
    const std::string different = plain + "line_buffers = 2\n";
    EXPECT_NE(serve::ResultStore::keyFor(different, "F5"),
              serve::ResultStore::keyFor(plain, "F5"));
}

TEST(ResultStore, KeyForRejectsUnparseableMachineText)
{
    EXPECT_THROW(serve::ResultStore::keyFor("[no_such_section]\nx = 1\n",
                                            "F5"),
                 ConfigError);
}

TEST(ResultStore, CorruptEntryFallsBackWithoutPoisoningTheStore)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_corrupt");
    serve::ResultStore store(scratch.dir.string());
    sim::SimResult result = fakeResult("crc", 1.5);
    std::string key = keyOf(storeConfig("crc"));
    store.insert(key, result);

    // Truncate the entry mid-JSON, the way a torn write would (the
    // tmp+fsync+rename discipline makes this impossible for our own
    // writes, but a store directory is user-editable).
    {
        std::ofstream torn(store.entryPath(key),
                           std::ios::binary | std::ios::trunc);
        torn << "{\"t\":\"entry\",\"k\":\"" << key << "\",\"vers";
    }
    sim::SimResult loaded;
    EXPECT_FALSE(store.lookup(key, loaded)) << "corrupt entry is a miss";
    EXPECT_GE(store.stats().corrupt, 1u);

    // The store is not poisoned: a fresh insert overwrites the corpse
    // and the next lookup hits.
    store.insert(key, result);
    ASSERT_TRUE(store.lookup(key, loaded));
    EXPECT_EQ(sim::resultToJson(loaded).dump(),
              sim::resultToJson(result).dump());

    // A wrong-version entry is equally a miss.
    {
        std::ofstream stale(store.entryPath(key),
                            std::ios::binary | std::ios::trunc);
        stale << "{\"t\":\"entry\",\"k\":\"" << key
              << "\",\"version\":\"serve-0|cpet-0\",\"result\":{}}\n";
    }
    EXPECT_FALSE(store.lookup(key, loaded));
}

TEST(ResultStore, FetchOrComputeReportsItsSource)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_source");
    serve::ResultStore store(scratch.dir.string());
    std::string key = keyOf(storeConfig("crc"));

    std::string source;
    sim::SimResult first = store.fetchOrCompute(
        key, []() { return fakeResult("crc", 2.0); }, &source);
    EXPECT_EQ(source, "sim");
    EXPECT_EQ(store.stats().computes, 1u);
    EXPECT_EQ(store.entries(), 1u);

    sim::SimResult second = store.fetchOrCompute(
        key,
        []() -> sim::SimResult {
            throw WorkloadError("must not recompute a stored result");
        },
        &source);
    EXPECT_EQ(source, "store");
    EXPECT_EQ(sim::resultToJson(second).dump(),
              sim::resultToJson(first).dump());
    EXPECT_EQ(store.stats().computes, 1u);
}

TEST(ResultStore, SingleFlightDedupExecutesExactlyOnce)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_singleflight");
    serve::ResultStore store(scratch.dir.string());
    std::string key = keyOf(storeConfig("crc"));

    constexpr unsigned kCallers = 8;
    std::atomic<unsigned> executions{0};
    auto compute = [&executions]() {
        ++executions;
        // Hold the flight open long enough that every caller joins it.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return fakeResult("crc", 3.0);
    };

    std::vector<std::thread> callers;
    std::vector<std::string> dumps(kCallers);
    std::vector<std::string> sources(kCallers);
    for (unsigned i = 0; i < kCallers; ++i)
        callers.emplace_back([&, i]() {
            sim::SimResult result =
                store.fetchOrCompute(key, compute, &sources[i]);
            dumps[i] = sim::resultToJson(result).dump();
        });
    for (auto &thread : callers)
        thread.join();

    EXPECT_EQ(executions.load(), 1u)
        << "N concurrent identical requests must simulate once";
    for (unsigned i = 1; i < kCallers; ++i)
        EXPECT_EQ(dumps[i], dumps[0]);
    unsigned shared = 0;
    for (const auto &source : sources)
        shared += source == "shared" ? 1 : 0;
    EXPECT_EQ(shared, kCallers - 1) << "exactly one leader";
    EXPECT_EQ(store.stats().sharedWaits, kCallers - 1);
}

TEST(ResultStore, ComputeFailurePropagatesAndIsNotMemoized)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_failure");
    serve::ResultStore store(scratch.dir.string());
    std::string key = keyOf(storeConfig("crc"));

    EXPECT_THROW(store.fetchOrCompute(key,
                                      []() -> sim::SimResult {
                                          throw WorkloadError("boom");
                                      }),
                 WorkloadError);
    EXPECT_EQ(store.entries(), 0u) << "failures are never stored";

    // The flight is gone: a later request retries and can succeed.
    std::string source;
    sim::SimResult result = store.fetchOrCompute(
        key, []() { return fakeResult("crc", 4.0); }, &source);
    EXPECT_EQ(source, "sim");
    EXPECT_EQ(result.ipc, 4.0);
    EXPECT_EQ(store.entries(), 1u);
}

TEST(ResultStore, InsertFailureIsSurvivable)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_insertfail");
    serve::ResultStore store(scratch.dir.string());
    std::string key = keyOf(storeConfig("crc"));

    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=1,rate=1,point=serve.store_write"));
    std::string source;
    sim::SimResult result = store.fetchOrCompute(
        key, []() { return fakeResult("crc", 5.0); }, &source);
    util::FaultInjector::instance().disarm();

    // Losing durability for the entry costs a future re-simulation,
    // never this result.
    EXPECT_EQ(source, "sim");
    EXPECT_EQ(result.ipc, 5.0);
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_GE(store.stats().insertFailures, 1u);
}

TEST(ResultStore, ReadFaultFallsBackToRecomputation)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_readfault");
    serve::ResultStore store(scratch.dir.string());
    std::string key = keyOf(storeConfig("crc"));
    store.insert(key, fakeResult("crc", 6.0));

    util::FaultInjector::instance().arm(
        util::ChaosSpec::parse("seed=1,rate=1,point=serve.store_read"));
    std::string source;
    sim::SimResult result = store.fetchOrCompute(
        key, []() { return fakeResult("crc", 6.0); }, &source);
    util::FaultInjector::instance().disarm();

    EXPECT_EQ(source, "sim") << "an unreadable entry re-executes";
    EXPECT_EQ(result.ipc, 6.0);
}

TEST(ResultStore, ClearRemovesEverything)
{
    VerboseScope quiet(false);
    ScratchStore scratch("cpe_result_store_clear");
    serve::ResultStore store(scratch.dir.string());
    store.insert(keyOf(storeConfig("crc")), fakeResult("crc", 1.0));
    store.insert(keyOf(storeConfig("copy")), fakeResult("copy", 2.0));
    EXPECT_EQ(store.entries(), 2u);
    store.clear();
    EXPECT_EQ(store.entries(), 0u);
    sim::SimResult loaded;
    EXPECT_FALSE(store.lookup(keyOf(storeConfig("crc")), loaded));
}

} // namespace
} // namespace cpe
