/**
 * @file
 * Program-builder tests: label binding and fixups, pseudo-instruction
 * expansion (loadImm checked against the executor — a property test),
 * data-segment allocation, and linker error detection.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "func/executor.hh"
#include "prog/builder.hh"
#include "util/random.hh"

namespace cpe::prog {
namespace {

using namespace reg;

TEST(Builder, ForwardAndBackwardLabels)
{
    Builder b("labels");
    Label fwd = b.newLabel();
    b.loadImm(t0, 0);
    Label back = b.here();
    b.addi(t0, t0, 1);
    b.slti(t1, t0, 3);
    b.bne(t1, zero, back);   // backward branch
    b.j(fwd);                // forward jump
    b.addi(t0, t0, 100);     // skipped
    b.bind(fwd);
    b.halt();
    Program p = b.build();

    func::Executor exec(p);
    exec.run();
    EXPECT_EQ(exec.state().readReg(t0), 3u);
}

TEST(Builder, CallAndRet)
{
    Builder b("callret");
    Label fn = b.newLabel();
    Label main = b.newLabel();
    b.j(main);
    b.bind(fn);
    b.addi(a0, a0, 7);
    b.ret();
    b.bind(main);
    b.loadImm(a0, 10);
    b.call(fn);
    b.call(fn);
    b.halt();
    Program p = b.build();

    func::Executor exec(p);
    exec.run();
    EXPECT_EQ(exec.state().readReg(a0), 24u);
}

TEST(Builder, DataSegments)
{
    Builder b("data");
    Addr first = b.allocData(16, 8);
    Addr aligned = b.allocData(100, 64);
    EXPECT_EQ(first, layout::DataBase);
    EXPECT_EQ(aligned % 64, 0u);
    EXPECT_GT(aligned, first);

    b.setData64(first, 0x1122334455667788ull);
    b.setDataF64(first + 8, 2.5);
    b.halt();
    Program p = b.build();

    func::Executor exec(p);
    EXPECT_EQ(exec.memory().read(first, 8), 0x1122334455667788ull);
    double d;
    std::uint64_t raw = exec.memory().read(first + 8, 8);
    std::memcpy(&d, &raw, 8);
    EXPECT_EQ(d, 2.5);
    // Little-endian byte order.
    EXPECT_EQ(exec.memory().read(first, 1), 0x88u);
    EXPECT_EQ(exec.memory().read(first + 7, 1), 0x11u);
}

/** Property: loadImm materializes any 64-bit constant exactly. */
class LoadImmProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LoadImmProperty, MaterializesExactValue)
{
    Rng rng(GetParam());
    std::vector<std::uint64_t> values = {
        0, 1, 2047, 2048, -1ull, 0x7fffffffffffffffull,
        0x8000000000000000ull, 4096, 0xdeadbeefull, 0x123456789abcdef0ull,
        static_cast<std::uint64_t>(-2048), static_cast<std::uint64_t>(-2049),
        (1ull << 29) - 1, 1ull << 29,
    };
    for (int i = 0; i < 40; ++i)
        values.push_back(rng.next64() >> rng.below(64));

    for (std::uint64_t value : values) {
        Builder b("imm");
        b.loadImm(t0, value);
        b.halt();
        Program p = b.build();
        func::Executor exec(p);
        exec.run();
        EXPECT_EQ(exec.state().readReg(t0), value)
            << "value 0x" << std::hex << value << "\n"
            << p.listing();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoadImmProperty,
                         ::testing::Values(11, 22, 33));

TEST(Builder, LoadImmIsCompactForSmallValues)
{
    Builder b("compact");
    b.loadImm(t0, 42);       // 1 inst (addi)
    b.loadImm(t1, 0x12345);  // 2 insts (lui + ori)
    b.halt();
    EXPECT_EQ(b.textSize(), 4u);
}

TEST(Builder, ProgramAccessors)
{
    Builder b("acc");
    b.nop();
    b.nop();
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.entry(), layout::TextBase);
    EXPECT_EQ(p.textEnd(), layout::TextBase + 12);
    EXPECT_TRUE(p.contains(layout::TextBase + 4));
    EXPECT_FALSE(p.contains(layout::TextBase + 5));
    EXPECT_FALSE(p.contains(layout::TextBase + 12));
    EXPECT_EQ(p.fetch(layout::TextBase).op, isa::Opcode::NOP);

    auto words = p.encodedText();
    EXPECT_EQ(words.size(), 3u);
    EXPECT_NE(p.listing().find("halt"), std::string::npos);
}

TEST(BuilderDeathTest, UnboundLabel)
{
    Builder b("unbound");
    Label missing = b.newLabel();
    b.j(missing);
    b.halt();
    EXPECT_DEATH(b.build(), "unbound label");
}

TEST(BuilderDeathTest, DoubleBind)
{
    Builder b("dbl");
    Label l = b.here();
    EXPECT_DEATH(b.bind(l), "bound twice");
}

TEST(BuilderDeathTest, BranchOutOfRange)
{
    Builder b("far");
    Label target = b.here();
    for (int i = 0; i < 600; ++i)
        b.nop();
    b.beq(zero, zero, target);  // > 2 KiB away
    b.halt();
    EXPECT_DEATH(b.build(), "out of range");
}

TEST(BuilderDeathTest, RunsOffTextEnd)
{
    Builder b("offend");
    b.nop();
    EXPECT_DEATH(b.build(), "run off the end");
}

} // namespace
} // namespace cpe::prog
